"""The network model shared by every subsystem.

A :class:`Topology` is an immutable undirected graph of switches plus a
fixed number of workstations (hosts) attached to each switch.  Hosts are
numbered ``switch * hosts_per_switch + k`` so that host↔switch conversion
is arithmetic, never a lookup.

Design notes
------------
- Switch-to-switch links are *single* (the paper: "two neighbouring switches
  are connected by a single link"), undirected and unweighted.
- Immutability: all derived structures (adjacency lists, adjacency matrix,
  link index) are built once in ``__init__`` and cached; this lets routing
  and distance computations treat a topology as a value.
- ``networkx`` interop is provided for tests and visual inspection but no
  core algorithm depends on it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

Link = Tuple[int, int]


def _normalize_link(u: int, v: int) -> Link:
    if u == v:
        raise ValueError(f"self-link at switch {u} is not allowed")
    return (u, v) if u < v else (v, u)


class Topology:
    """An undirected switch network with hosts attached to each switch.

    Parameters
    ----------
    num_switches:
        Number of switching elements (the paper's "nodes").
    links:
        Iterable of ``(u, v)`` switch pairs.  Order and duplication are
        normalized; duplicates raise (single link between neighbours).
    hosts_per_switch:
        Workstations attached to every switch (paper default: 4).
    switch_ports:
        Total ports per switch (paper default: 8).  The inter-switch degree
        of every switch must fit in ``switch_ports - hosts_per_switch``.
    name:
        Optional human-readable label used in reports.
    """

    def __init__(
        self,
        num_switches: int,
        links: Iterable[Link],
        *,
        hosts_per_switch: int = 4,
        switch_ports: int = 8,
        name: str = "",
    ):
        if num_switches <= 0:
            raise ValueError(f"num_switches must be > 0, got {num_switches}")
        if hosts_per_switch < 0:
            raise ValueError(f"hosts_per_switch must be >= 0, got {hosts_per_switch}")
        if switch_ports < hosts_per_switch:
            raise ValueError(
                f"switch_ports ({switch_ports}) < hosts_per_switch ({hosts_per_switch})"
            )
        self._n = int(num_switches)
        self._hosts_per_switch = int(hosts_per_switch)
        self._switch_ports = int(switch_ports)
        self.name = name or f"topology-{self._n}sw"

        seen = set()
        norm: List[Link] = []
        for u, v in links:
            u, v = int(u), int(v)
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise ValueError(f"link ({u},{v}) references a switch outside 0..{self._n - 1}")
            link = _normalize_link(u, v)
            if link in seen:
                raise ValueError(f"duplicate link {link}; neighbours share a single link")
            seen.add(link)
            norm.append(link)
        norm.sort()
        self._links: Tuple[Link, ...] = tuple(norm)

        adj: List[List[int]] = [[] for _ in range(self._n)]
        for u, v in self._links:
            adj[u].append(v)
            adj[v].append(u)
        max_degree = self._switch_ports - self._hosts_per_switch
        for s, neigh in enumerate(adj):
            if len(neigh) > max_degree:
                raise ValueError(
                    f"switch {s} has degree {len(neigh)} but only "
                    f"{max_degree} inter-switch ports are available"
                )
            neigh.sort()
        self._adj: Tuple[Tuple[int, ...], ...] = tuple(tuple(a) for a in adj)
        self._link_index: Dict[Link, int] = {l: i for i, l in enumerate(self._links)}

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_switches(self) -> int:
        return self._n

    @property
    def hosts_per_switch(self) -> int:
        return self._hosts_per_switch

    @property
    def switch_ports(self) -> int:
        return self._switch_ports

    @property
    def num_hosts(self) -> int:
        return self._n * self._hosts_per_switch

    @property
    def links(self) -> Tuple[Link, ...]:
        """All inter-switch links as sorted ``(u, v)`` pairs with ``u < v``."""
        return self._links

    @property
    def num_links(self) -> int:
        return len(self._links)

    def neighbors(self, switch: int) -> Tuple[int, ...]:
        """Switches adjacent to ``switch``, ascending."""
        return self._adj[switch]

    def degree(self, switch: int) -> int:
        """Inter-switch degree (links only; hosts are not counted)."""
        return len(self._adj[switch])

    def open_ports(self, switch: int) -> int:
        """Ports of ``switch`` not used by hosts or links."""
        return self._switch_ports - self._hosts_per_switch - self.degree(switch)

    def has_link(self, u: int, v: int) -> bool:
        """True when switches ``u`` and ``v`` are directly linked."""
        return _normalize_link(u, v) in self._link_index

    def link_id(self, u: int, v: int) -> int:
        """Stable integer id of the (undirected) link ``u-v``."""
        return self._link_index[_normalize_link(u, v)]

    # ------------------------------------------------------------------ #
    # host numbering
    # ------------------------------------------------------------------ #

    def host_switch(self, host: int) -> int:
        """Switch a host hangs off (hosts are numbered switch-major)."""
        if not (0 <= host < self.num_hosts):
            raise ValueError(f"host {host} outside 0..{self.num_hosts - 1}")
        return host // self._hosts_per_switch

    def switch_hosts(self, switch: int) -> range:
        """Hosts attached to ``switch`` as a ``range``."""
        if not (0 <= switch < self._n):
            raise ValueError(f"switch {switch} outside 0..{self._n - 1}")
        base = switch * self._hosts_per_switch
        return range(base, base + self._hosts_per_switch)

    # ------------------------------------------------------------------ #
    # derived structures
    # ------------------------------------------------------------------ #

    def adjacency_matrix(self) -> np.ndarray:
        """Dense ``N×N`` 0/1 adjacency matrix (switches only)."""
        a = np.zeros((self._n, self._n), dtype=np.int64)
        for u, v in self._links:
            a[u, v] = 1
            a[v, u] = 1
        return a

    def laplacian(self) -> np.ndarray:
        """Graph Laplacian ``D - A`` of the switch graph."""
        a = self.adjacency_matrix().astype(float)
        return np.diag(a.sum(axis=1)) - a

    def is_connected(self) -> bool:
        """True when every switch is reachable from switch 0."""
        if self._n == 1:
            return True
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    def hop_distances(self) -> np.ndarray:
        """All-pairs hop distances over the raw graph (BFS; no routing).

        Unreachable pairs get ``-1``.  Routing-restricted distances live in
        :mod:`repro.routing`; this is the topological baseline.
        """
        n = self._n
        dist = np.full((n, n), -1, dtype=np.int64)
        for src in range(n):
            dist[src, src] = 0
            frontier = [src]
            d = 0
            while frontier:
                d += 1
                nxt = []
                for u in frontier:
                    for v in self._adj[u]:
                        if dist[src, v] < 0:
                            dist[src, v] = d
                            nxt.append(v)
                frontier = nxt
        return dist

    def diameter(self) -> int:
        """Longest shortest path over the raw graph; raises if disconnected."""
        d = self.hop_distances()
        if (d < 0).any():
            raise ValueError("diameter undefined: topology is disconnected")
        return int(d.max())

    # ------------------------------------------------------------------ #
    # interop / dunder
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Export the switch graph as a ``networkx.Graph`` (for tests/plots)."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self._links)
        return g

    def without_link(self, u: int, v: int) -> "Topology":
        """A copy of this topology with the link ``u-v`` removed.

        Models a link failure (Autonet-style networks reconfigure their
        up*/down* trees after failures).  The result may be disconnected —
        callers decide whether that is fatal for their use.
        """
        key = _normalize_link(u, v)
        if key not in self._link_index:
            raise ValueError(
                f"({u},{v}) is not a link of {self.name}; links are "
                f"{list(self._links)[:8]}{'...' if self.num_links > 8 else ''}"
            )
        links = [l for l in self._links if l != key]
        return Topology(
            self._n,
            links,
            hosts_per_switch=self._hosts_per_switch,
            switch_ports=self._switch_ports,
            name=f"{self.name}-minus-{key[0]}-{key[1]}",
        )

    def without_links(self, links: Iterable[Link]) -> "Topology":
        """A copy of this topology with every link in ``links`` removed.

        Multi-link generalization of :meth:`without_link` (one validation
        pass, one copy).  Raises ``ValueError`` naming the first link that
        is not part of the topology.
        """
        keys = set()
        for u, v in links:
            key = _normalize_link(int(u), int(v))
            if key not in self._link_index:
                raise ValueError(f"({u},{v}) is not a link of {self.name}")
            keys.add(key)
        if not keys:
            return self
        remaining = [l for l in self._links if l not in keys]
        tag = "+".join(f"{a}-{b}" for a, b in sorted(keys))
        return Topology(
            self._n,
            remaining,
            hosts_per_switch=self._hosts_per_switch,
            switch_ports=self._switch_ports,
            name=f"{self.name}-minus-{tag}",
        )

    def without_switch(self, switch: int) -> "Topology":
        """A copy with ``switch`` (and every link touching it) removed.

        Models a switch failure: its hosts disappear with it.  Remaining
        switches are renumbered compactly (ids above ``switch`` shift down
        by one) so the result is a well-formed topology; callers that need
        to keep the original ids should use
        :meth:`induced_subtopology` instead.
        """
        if not (0 <= switch < self._n):
            raise ValueError(
                f"switch {switch} is not a switch of {self.name} "
                f"(valid ids: 0..{self._n - 1})"
            )
        if self._n == 1:
            raise ValueError(
                f"cannot remove switch {switch}: {self.name} has a single switch"
            )
        links = [
            (u - (u > switch), v - (v > switch))
            for u, v in self._links
            if switch not in (u, v)
        ]
        return Topology(
            self._n - 1,
            links,
            hosts_per_switch=self._hosts_per_switch,
            switch_ports=self._switch_ports,
            name=f"{self.name}-minus-sw{switch}",
        )

    def induced_subtopology(self, switches: Iterable[int]) -> "Topology":
        """The subgraph induced by ``switches``, compactly renumbered.

        Switch ``sorted(switches)[k]`` becomes switch ``k`` of the result
        (so the caller's id map is simply the sorted switch list).  Links
        with either endpoint outside the set are dropped.  Raises
        ``ValueError`` on out-of-range or duplicate ids.
        """
        chosen = sorted(int(s) for s in switches)
        if not chosen:
            raise ValueError(f"induced subtopology of {self.name} needs >= 1 switch")
        if len(set(chosen)) != len(chosen):
            raise ValueError(f"duplicate switch ids in {chosen}")
        if chosen[0] < 0 or chosen[-1] >= self._n:
            bad = chosen[0] if chosen[0] < 0 else chosen[-1]
            raise ValueError(
                f"switch {bad} is not a switch of {self.name} "
                f"(valid ids: 0..{self._n - 1})"
            )
        local = {s: i for i, s in enumerate(chosen)}
        links = [
            (local[u], local[v])
            for u, v in self._links
            if u in local and v in local
        ]
        return Topology(
            len(chosen),
            links,
            hosts_per_switch=self._hosts_per_switch,
            switch_ports=self._switch_ports,
            name=f"{self.name}-sub{len(chosen)}",
        )

    def relabeled(self, permutation: Sequence[int]) -> "Topology":
        """Return an isomorphic topology with switches renamed by ``permutation``.

        ``permutation[old] == new``.  Useful for property tests: every
        derived quantity must be equivariant under relabeling.
        """
        perm = list(permutation)
        if sorted(perm) != list(range(self._n)):
            raise ValueError("permutation must be a bijection on switch ids")
        links = [(perm[u], perm[v]) for u, v in self._links]
        return Topology(
            self._n,
            links,
            hosts_per_switch=self._hosts_per_switch,
            switch_ports=self._switch_ports,
            name=f"{self.name}-relabeled",
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self._n == other._n
            and self._links == other._links
            and self._hosts_per_switch == other._hosts_per_switch
            and self._switch_ports == other._switch_ports
        )

    def __hash__(self) -> int:
        return hash((self._n, self._links, self._hosts_per_switch, self._switch_ports))

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, switches={self._n}, links={len(self._links)}, "
            f"hosts={self.num_hosts})"
        )


__all__ = ["Topology", "Link"]
