"""Structural metrics of switch networks.

The paper motivates the equivalent-distance model by noting that classical
topological properties (node count, bisection width, diameter) "do not
provide information about the arrangement of the links" in irregular
networks.  This module computes those classical properties so experiments
can show precisely that: topologies with identical classical metrics but
different link arrangements score differently under the distance model —
and perform differently in simulation.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict

import numpy as np

from repro.topology.graph import Topology
from repro.util.rng import SeedLike, as_rng


def average_distance(topo: Topology) -> float:
    """Mean raw hop distance over ordered switch pairs."""
    d = topo.hop_distances().astype(float)
    if (d < 0).any():
        raise ValueError("average distance undefined: disconnected topology")
    n = topo.num_switches
    if n < 2:
        return 0.0
    return float((d.sum() - np.trace(d)) / (n * (n - 1)))


def degree_stats(topo: Topology) -> Dict[str, float]:
    """Min / max / mean inter-switch degree."""
    degs = [topo.degree(s) for s in range(topo.num_switches)]
    return {
        "min": float(min(degs)),
        "max": float(max(degs)),
        "mean": float(np.mean(degs)),
    }


def _cut_size(topo: Topology, side: frozenset) -> int:
    return sum(1 for u, v in topo.links if (u in side) != (v in side))


def bisection_width(topo: Topology, *, exact_limit: int = 16,
                    samples: int = 2000, seed: SeedLike = 0) -> int:
    """Minimum links cut by a balanced bipartition of the switches.

    Exact enumeration up to ``exact_limit`` switches (C(16,8)/2 = 6435
    candidate cuts); beyond that a sampled upper bound (clearly labelled
    in the return — see ``bisection_is_exact``).
    """
    n = topo.num_switches
    if n < 2:
        raise ValueError("bisection undefined for a single switch")
    half = n // 2
    nodes = list(range(n))
    best = topo.num_links + 1
    if n <= exact_limit:
        anchor = nodes[0]
        rest = nodes[1:]
        # Fix the anchor on one side to halve the enumeration.
        for combo in combinations(rest, half - 1 if n % 2 == 0 else half):
            side = frozenset((anchor,) + combo) if n % 2 == 0 \
                else frozenset(combo)
            best = min(best, _cut_size(topo, side))
        return best
    rng = as_rng(seed)
    for _ in range(samples):
        side = frozenset(int(x) for x in rng.permutation(n)[:half])
        best = min(best, _cut_size(topo, side))
    return best


def bisection_is_exact(topo: Topology, *, exact_limit: int = 16) -> bool:
    """Whether :func:`bisection_width` enumerates exactly for this size."""
    return topo.num_switches <= exact_limit


def edge_connectivity(topo: Topology) -> int:
    """Global minimum edge cut (Stoer–Wagner via networkx)."""
    import networkx as nx

    if topo.num_switches < 2:
        raise ValueError("edge connectivity undefined for a single switch")
    if not topo.is_connected():
        return 0
    cut, _parts = nx.stoer_wagner(topo.to_networkx())
    return int(cut)


def path_diversity(topo: Topology) -> float:
    """Mean number of edge-disjoint shortest paths per switch pair.

    Estimated as ``hop_distance / equivalent_resistance`` over the raw
    graph (k parallel length-d paths have resistance d/k): the quantity
    the paper's distance model responds to and hop counts ignore.
    """
    from repro.distance.resistance import resistance_matrix

    n = topo.num_switches
    if n < 2:
        return 0.0
    hops = topo.hop_distances().astype(float)
    if (hops < 0).any():
        raise ValueError("path diversity undefined: disconnected topology")
    res = resistance_matrix(n, topo.links)
    iu = np.triu_indices(n, k=1)
    ratio = hops[iu] / res[iu]
    return float(ratio.mean())


def summary(topo: Topology) -> Dict[str, object]:
    """All classical metrics in one dict (used by reports and the CLI)."""
    return {
        "switches": topo.num_switches,
        "links": topo.num_links,
        "diameter": topo.diameter(),
        "average_distance": average_distance(topo),
        "degree": degree_stats(topo),
        "bisection_width": bisection_width(topo),
        "bisection_exact": bisection_is_exact(topo),
        "edge_connectivity": edge_connectivity(topo),
        "path_diversity": path_diversity(topo),
    }


__all__ = [
    "average_distance",
    "degree_stats",
    "bisection_width",
    "bisection_is_exact",
    "edge_connectivity",
    "path_diversity",
    "summary",
]
