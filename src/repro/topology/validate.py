"""Topology invariant checks.

:func:`validate_topology` asserts structural invariants any topology must
satisfy; :func:`check_paper_constraints` additionally enforces the exact
restrictions of the paper's Section 5.1 evaluation setup.
"""

from __future__ import annotations

from repro.topology.graph import Topology


class TopologyError(ValueError):
    """A topology violates a required invariant."""


def validate_topology(topo: Topology, *, require_connected: bool = True) -> None:
    """Check structural invariants; raise :class:`TopologyError` on failure.

    The :class:`Topology` constructor already rejects malformed inputs
    (self-links, duplicates, port overflow); this re-verifies the derived
    structures and connectivity so it can be used as a guard after
    deserialization or programmatic surgery.
    """
    n = topo.num_switches
    degree_from_links = [0] * n
    for u, v in topo.links:
        if not (0 <= u < v < n):
            raise TopologyError(f"malformed link ({u},{v})")
        degree_from_links[u] += 1
        degree_from_links[v] += 1
    for s in range(n):
        if topo.degree(s) != degree_from_links[s]:
            raise TopologyError(
                f"adjacency/degree mismatch at switch {s}: "
                f"{topo.degree(s)} vs {degree_from_links[s]}"
            )
        if topo.open_ports(s) < 0:
            raise TopologyError(f"switch {s} uses more ports than it has")
        for t in topo.neighbors(s):
            if s not in topo.neighbors(t):
                raise TopologyError(f"asymmetric adjacency between {s} and {t}")
    if require_connected and not topo.is_connected():
        raise TopologyError("topology is disconnected")


def check_paper_constraints(topo: Topology, *, degree: int = 3) -> None:
    """Enforce the paper's Section 5.1 setup.

    - exactly 4 workstations per switch,
    - 8-port switches,
    - every switch uses exactly ``degree`` (= 3) inter-switch ports,
    - single link between neighbours (guaranteed by the model),
    - connected network.
    """
    validate_topology(topo, require_connected=True)
    if topo.hosts_per_switch != 4:
        raise TopologyError(
            f"paper setup requires 4 hosts/switch, got {topo.hosts_per_switch}"
        )
    if topo.switch_ports != 8:
        raise TopologyError(f"paper setup requires 8-port switches, got {topo.switch_ports}")
    for s in range(topo.num_switches):
        if topo.degree(s) != degree:
            raise TopologyError(
                f"paper setup requires degree {degree} at every switch; "
                f"switch {s} has degree {topo.degree(s)}"
            )


__all__ = ["TopologyError", "validate_topology", "check_paper_constraints"]
