"""Switch-based network topologies.

The paper evaluates randomly generated *irregular* topologies built from
8-port switches: 4 ports host workstations, 3 ports connect to neighbouring
switches and 1 port is left open.  This package provides:

- :class:`~repro.topology.graph.Topology` — the immutable network model used
  by every other subsystem (routing, distance, simulation);
- :func:`~repro.topology.irregular.random_irregular_topology` — the paper's
  random generator (connected, simple, fixed inter-switch degree);
- :mod:`~repro.topology.designed` — the specially designed 24-switch
  four-ring network of Figure 4 plus a collection of regular topologies
  (ring, mesh, torus, hypercube, ...) used to exercise the claim that the
  technique applies to regular networks as well.
"""

from repro.topology.graph import Topology, Link
from repro.topology.irregular import random_irregular_topology
from repro.topology.designed import (
    four_rings_topology,
    ring_topology,
    mesh_topology,
    torus_topology,
    hypercube_topology,
    complete_topology,
    star_topology,
    binary_tree_topology,
    clustered_random_topology,
)
from repro.topology.validate import (
    validate_topology,
    check_paper_constraints,
    TopologyError,
)
from repro.topology.metrics import (
    average_distance,
    bisection_width,
    edge_connectivity,
    path_diversity,
)

__all__ = [
    "Topology",
    "Link",
    "random_irregular_topology",
    "four_rings_topology",
    "ring_topology",
    "mesh_topology",
    "torus_topology",
    "hypercube_topology",
    "complete_topology",
    "star_topology",
    "binary_tree_topology",
    "clustered_random_topology",
    "validate_topology",
    "check_paper_constraints",
    "TopologyError",
    "average_distance",
    "bisection_width",
    "edge_connectivity",
    "path_diversity",
]
