"""Link-failure study: robustness of mappings and routing reconfiguration.

Autonet — the system whose up*/down* routing the paper adopts — was built
around automatic reconfiguration after link failures.  This study asks the
scheduling-layer version of that question:

for each single link failure,

1. does up*/down* routing reconnect the network (it must, whenever the
   failed topology is still connected);
2. how much does the *old* OP mapping degrade under the new table of
   equivalent distances (``C_c`` before repair);
3. how much does re-running the scheduling technique on the degraded
   network recover (``C_c`` after repair)?

This is an extension (the paper does not study failures); the benchmark
treats it as an ablation of mapping robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.scheduler import CommunicationAwareScheduler
from repro.experiments.common import ExperimentSetup
from repro.routing.updown import UpDownRouting
from repro.topology.graph import Link
from repro.util.reporting import Table


@dataclass
class FailureRow:
    """Outcome of one injected link failure."""

    link: Link
    still_connected: bool
    c_c_before_failure: float
    c_c_degraded: Optional[float]      # old mapping, new distances
    c_c_rescheduled: Optional[float]   # new mapping, new distances

    @property
    def recovery(self) -> Optional[float]:
        if self.c_c_degraded is None or self.c_c_rescheduled is None:
            return None
        return self.c_c_rescheduled - self.c_c_degraded


@dataclass
class FailureStudyResult:
    rows: List[FailureRow]

    @property
    def survivable(self) -> List[FailureRow]:
        return [r for r in self.rows if r.still_connected]

    def all_survivable_rescheduled_ok(self) -> bool:
        """Rescheduling never ends below the degraded mapping."""
        return all(
            r.c_c_rescheduled >= r.c_c_degraded - 1e-9
            for r in self.survivable
        )


def run_failure_study(
    setup: ExperimentSetup,
    *,
    links: Optional[Sequence[Link]] = None,
    seed: int = 1,
) -> FailureStudyResult:
    """Inject single-link failures and measure mapping degradation/recovery.

    ``links`` defaults to every link of the topology (24 cases for the
    paper's 16-switch network).
    """
    baseline = setup.scheduler.schedule(setup.workload, seed=seed)
    targets = list(links) if links is not None else list(setup.topology.links)
    rows: List[FailureRow] = []
    for link in targets:
        failed = setup.topology.without_link(*link)
        if not failed.is_connected():
            rows.append(FailureRow(
                link=link,
                still_connected=False,
                c_c_before_failure=baseline.c_c,
                c_c_degraded=None,
                c_c_rescheduled=None,
            ))
            continue
        sched = CommunicationAwareScheduler(failed,
                                            routing=UpDownRouting(failed))
        degraded = sched.evaluate(baseline.partition)["C_c"]
        rescheduled = sched.schedule(setup.workload, seed=seed,
                                     initial=baseline.partition)
        rows.append(FailureRow(
            link=link,
            still_connected=True,
            c_c_before_failure=baseline.c_c,
            c_c_degraded=degraded,
            c_c_rescheduled=rescheduled.c_c,
        ))
    return FailureStudyResult(rows)


def render_failure_study(res: FailureStudyResult) -> str:
    """Text table of per-failure degradation and recovery."""
    t = Table(
        ["failed link", "connected", "C_c healthy", "C_c degraded",
         "C_c rescheduled", "recovery"],
        title="failure injection - single link failures",
    )
    for r in res.rows:
        t.add_row([
            f"{r.link[0]}-{r.link[1]}",
            "yes" if r.still_connected else "NO",
            r.c_c_before_failure,
            r.c_c_degraded,
            r.c_c_rescheduled,
            r.recovery,
        ], digits=3)
    surv = res.survivable
    summary = (
        f"\nsurvivable failures: {len(surv)}/{len(res.rows)}; "
        f"rescheduling recovered quality on "
        f"{sum(1 for r in surv if (r.recovery or 0) > 1e-9)} of them"
    )
    return t.render() + summary


__all__ = [
    "FailureRow",
    "FailureStudyResult",
    "run_failure_study",
    "render_failure_study",
]
