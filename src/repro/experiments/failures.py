"""Fault-injection study: mapping robustness under arbitrary fault scenarios.

Autonet — the system whose up*/down* routing the paper adopts — was built
around automatic reconfiguration after link/switch failures.  This study
asks the scheduling-layer version of that question over the fault
subsystem (:mod:`repro.faults`): for each injected fault scenario,

1. does up*/down* reconnect every surviving component (it must);
2. how much does the *old* OP mapping degrade under the reconfigured table
   of equivalent distances (``C_c`` before recovery);
3. how much does warm-start Tabu *repair* recover, at what cost, versus a
   *full reschedule* (the repair-vs-reschedule quality/time tradeoff);
4. when the fault partitions the network (or kills switches), what does
   the per-component degraded-mode schedule look like — how many clusters
   still fit?

Scenarios default to every single-link failure; multi-fault studies pass
sampled ``k``-fault scenarios from
:func:`repro.faults.model.sample_fault_scenarios`.  Per-scenario jobs are
independent and seeded, so the study runs on a process pool
(``workers=``) and supports checkpoint/resume (``checkpoint_path=``) with
results bit-identical to an uninterrupted serial run (wall-time fields are
measurement metadata and excluded from the deterministic payload).

The original single-link API (:class:`FailureRow`,
:func:`run_failure_study`) is preserved as a thin view over the subsystem.

This is an extension (the paper does not study failures); the benchmark
treats it as an ablation of mapping robustness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checkpoint import SweepCheckpoint
from repro.core.mapping import Partition, Workload
from repro.distance.cache import topology_fingerprint
from repro.experiments.common import ExperimentSetup
from repro.faults.degrade import degrade
from repro.faults.model import FaultScenario, single_link_scenarios
from repro.faults.reschedule import compare_repair_strategies, schedule_degraded
from repro.obs import trace as _trace
from repro.parallel import WorkersLike, parallel_map
from repro.routing.tables import RoutingTable
from repro.simulation.config import SimulationConfig
from repro.simulation.sweep import run_load_sweep
from repro.simulation.traffic import IntraClusterTraffic
from repro.topology.graph import Link, Topology
from repro.util.reporting import Table
from repro.util.rng import derive_seed


@dataclass
class FaultRow:
    """Outcome of one injected fault scenario."""

    scenario: FaultScenario
    connected: bool                    # survivors form a single component
    full_machine: bool                 # connected and no switch lost
    num_components: int
    c_c_before: float                  # healthy network, OP mapping
    c_c_degraded: Optional[float]      # old mapping, reconfigured distances
    c_c_repaired: Optional[float]      # warm-start Tabu repair
    c_c_rescheduled: Optional[float]   # full multi-start reschedule
    repair_seconds: float
    reschedule_seconds: float
    placed_clusters: int
    unplaced_clusters: int

    @property
    def survivable(self) -> bool:
        """True when the old workload still fits the surviving network."""
        return self.full_machine

    @property
    def repair_gap(self) -> Optional[float]:
        """``C_c`` left on the table by repairing instead of rescheduling."""
        if self.c_c_repaired is None or self.c_c_rescheduled is None:
            return None
        return self.c_c_rescheduled - self.c_c_repaired

    def deterministic_dict(self) -> Dict[str, Any]:
        """Seed-determined fields only — wall times are excluded.

        Two runs of the same study (serial, parallel, or resumed from a
        checkpoint) must produce byte-identical serializations of this
        dict; the timing fields vary per run and are reported separately.
        """
        return {
            "scenario": self.scenario.to_dict(),
            "connected": self.connected,
            "full_machine": self.full_machine,
            "num_components": self.num_components,
            "c_c_before": self.c_c_before,
            "c_c_degraded": self.c_c_degraded,
            "c_c_repaired": self.c_c_repaired,
            "c_c_rescheduled": self.c_c_rescheduled,
            "placed_clusters": self.placed_clusters,
            "unplaced_clusters": self.unplaced_clusters,
        }


@dataclass
class FaultStudyResult:
    """All rows of one fault-injection study."""

    rows: List[FaultRow]
    baseline_c_c: float

    @property
    def survivable(self) -> List[FaultRow]:
        """Scenarios after which the full workload still fits."""
        return [r for r in self.rows if r.survivable]

    @property
    def degraded_mode(self) -> List[FaultRow]:
        """Scenarios that forced per-component (degraded-mode) scheduling."""
        return [r for r in self.rows if not r.survivable]

    @property
    def partitioned(self) -> List[FaultRow]:
        """Scenarios that split the surviving network into components."""
        return [r for r in self.rows if r.num_components > 1]

    def all_survivable_repaired_ok(self) -> bool:
        """Warm-start repair (and reschedule) never lose to the degraded mapping."""
        return all(
            r.c_c_repaired >= r.c_c_degraded - 1e-9
            and r.c_c_rescheduled >= r.c_c_degraded - 1e-9
            for r in self.survivable
        )

    def deterministic_payload(self) -> str:
        """Canonical JSON of every row's seed-determined fields.

        The bit-identity anchor for checkpoint/resume tests: an
        interrupted-and-resumed study must serialize to exactly these
        bytes.
        """
        return json.dumps(
            {
                "baseline_c_c": self.baseline_c_c,
                "rows": [r.deterministic_dict() for r in self.rows],
            },
            sort_keys=True,
        )


# One study job: everything a worker needs, value-like and picklable.
_ScenarioJob = Tuple[Topology, Workload, Partition, float, FaultScenario,
                     int, int, int]


def _evaluate_scenario(job: _ScenarioJob) -> FaultRow:
    """Run one fault scenario end to end (top-level for pickling)."""
    (topology, workload, baseline_partition, baseline_c_c, scenario, seed,
     repair_restarts, full_restarts) = job
    net = degrade(topology, scenario)
    if net.full_machine:
        cmp = compare_repair_strategies(
            net, workload, baseline_partition, seed=seed,
            repair_restarts=repair_restarts, full_restarts=full_restarts,
        )
        return FaultRow(
            scenario=scenario,
            connected=True,
            full_machine=True,
            num_components=1,
            c_c_before=baseline_c_c,
            c_c_degraded=cmp.degraded_c_c,
            c_c_repaired=cmp.repaired.c_c,
            c_c_rescheduled=cmp.rescheduled.c_c,
            repair_seconds=cmp.repaired.seconds,
            reschedule_seconds=cmp.rescheduled.seconds,
            placed_clusters=workload.num_clusters,
            unplaced_clusters=0,
        )
    # Partitioned network or lost switches: degrade gracefully to a
    # per-component schedule instead of raising.
    plan = schedule_degraded(net, workload, old_partition=baseline_partition,
                             seed=seed)
    return FaultRow(
        scenario=scenario,
        connected=net.connected,
        full_machine=False,
        num_components=len(net.components),
        c_c_before=baseline_c_c,
        c_c_degraded=None,
        c_c_repaired=None,
        c_c_rescheduled=None,
        repair_seconds=plan.seconds,
        reschedule_seconds=0.0,
        placed_clusters=len(plan.placed),
        unplaced_clusters=len(plan.unplaced),
    )


def study_checkpoint_key(setup: ExperimentSetup,
                         scenarios: Sequence[FaultScenario],
                         seed: int) -> str:
    """Stable identity of one study configuration (for ``--resume``)."""
    labels = ",".join(s.label for s in scenarios)
    return (
        f"faults|{topology_fingerprint(setup.topology)}|{seed}|"
        f"{len(scenarios)}|{labels}"
    )


def run_fault_study(
    setup: ExperimentSetup,
    scenarios: Optional[Sequence[FaultScenario]] = None,
    *,
    seed: int = 1,
    workers: WorkersLike = None,
    checkpoint_path: Optional[str] = None,
    repair_restarts: int = 1,
    full_restarts: int = 10,
) -> FaultStudyResult:
    """Inject fault scenarios and measure degradation/repair/reschedule.

    ``scenarios`` defaults to every single-link failure of the topology.
    Per-scenario jobs run on a process pool when ``workers`` asks for one;
    with ``checkpoint_path`` every completed scenario is recorded durably
    and a re-run resumes from the last completed job, bit-identical to an
    uninterrupted run.
    """
    if scenarios is None:
        scenarios = single_link_scenarios(setup.topology)
    scenarios = list(scenarios)
    baseline = setup.scheduler.schedule(setup.workload, seed=seed)
    jobs: List[_ScenarioJob] = [
        (setup.topology, setup.workload, baseline.partition, baseline.c_c,
         scenario, seed, repair_restarts, full_restarts)
        for scenario in scenarios
    ]
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = SweepCheckpoint(
            checkpoint_path,
            key=study_checkpoint_key(setup, scenarios, seed),
            total=len(jobs),
        )
    rows = parallel_map(_evaluate_scenario, jobs, workers=workers,
                        checkpoint=checkpoint)
    return FaultStudyResult(rows=rows, baseline_c_c=baseline.c_c)


def simulate_fault_impact(
    setup: ExperimentSetup,
    scenarios: Optional[Sequence[FaultScenario]] = None,
    *,
    rates: Sequence[float],
    config: SimulationConfig = SimulationConfig(),
    seed: int = 1,
    workers: WorkersLike = None,
) -> Dict[str, Dict[str, List[float]]]:
    """Simulated throughput of the baseline mapping under each fault.

    ``run_fault_study`` scores degradation by the clustering coefficient;
    this companion measures it directly: the healthy network and every
    *full-machine* scenario (all switches alive, so the old mapping still
    applies verbatim) are swept across ``rates`` with the baseline OP
    mapping and the scenario's reconfigured up*/down* routing.  Scenarios
    that lose switches or partition the network are skipped — there is no
    single network left to sweep.

    Returns ``{label: {"rates": [...], "accepted": [...],
    "avg_latency": [...]}}`` with a ``"healthy"`` row first.  The payload
    is a deterministic function of the seeds and is engine-independent;
    with ``config.engine == "batch"`` each scenario's ladder runs as one
    :func:`repro.simulation.engine_batch.simulate_batch` call.
    """
    if scenarios is None:
        scenarios = single_link_scenarios(setup.topology)
    scenarios = list(scenarios)
    baseline = setup.scheduler.schedule(setup.workload, seed=seed)
    traffic = IntraClusterTraffic(baseline.mapping)

    def sweep_rows(label: str, table: RoutingTable) -> Dict[str, List[float]]:
        cfg = replace(config,
                      seed=derive_seed(config.seed, "fault-sim", label))
        points = run_load_sweep(table, traffic, rates, cfg, workers=workers)
        return {
            "rates": [p.rate for p in points],
            "accepted": [p.result.accepted_flits_per_switch_cycle
                         for p in points],
            "avg_latency": [p.result.avg_latency for p in points],
        }

    out: Dict[str, Dict[str, List[float]]] = {}
    with _trace.span("faults.simulate", scenarios=len(scenarios),
                     engine=config.engine) as sp:
        out["healthy"] = sweep_rows("healthy", setup.routing_table)
        swept = 0
        for scenario in scenarios:
            net = degrade(setup.topology, scenario)
            if not net.full_machine:
                continue
            out[scenario.label] = sweep_rows(
                scenario.label, RoutingTable(net.routing()))
            swept += 1
        sp.set(swept=swept, skipped=len(scenarios) - swept)
    return out


def render_fault_study(res: FaultStudyResult) -> str:
    """Text table of per-scenario degradation, repair and rescheduling."""
    t = Table(
        ["scenario", "comps", "C_c healthy", "C_c degraded", "C_c repaired",
         "C_c resched", "repair s", "resched s", "placed"],
        title="failure injection — degradation, repair and reschedule",
    )
    for r in res.rows:
        t.add_row([
            r.scenario.label,
            r.num_components,
            r.c_c_before,
            r.c_c_degraded,
            r.c_c_repaired,
            r.c_c_rescheduled,
            r.repair_seconds,
            r.reschedule_seconds,
            f"{r.placed_clusters}"
            + (f" (-{r.unplaced_clusters})" if r.unplaced_clusters else ""),
        ], digits=3)
    surv = res.survivable
    degraded_mode = res.degraded_mode
    lines = [
        f"\nsurvivable failures: {len(surv)}/{len(res.rows)}; "
        f"repair held the degradation floor on all of them"
        if res.all_survivable_repaired_ok() else
        f"\nsurvivable failures: {len(surv)}/{len(res.rows)}; "
        "WARNING: a recovery fell below the degraded mapping",
    ]
    if degraded_mode:
        placed = sum(r.placed_clusters for r in degraded_mode)
        total = placed + sum(r.unplaced_clusters for r in degraded_mode)
        lines.append(
            f"degraded-mode scenarios: {len(degraded_mode)} "
            f"(per-component scheduling placed {placed}/{total} clusters)"
        )
    if surv:
        rep = sum(r.repair_seconds for r in surv)
        full = sum(r.reschedule_seconds for r in surv)
        gaps = [r.repair_gap for r in surv if r.repair_gap is not None]
        mean_gap = sum(gaps) / len(gaps) if gaps else 0.0
        lines.append(
            f"repair vs full reschedule: {rep:.2f}s vs {full:.2f}s "
            f"({full / rep:.1f}x) at a mean C_c gap of {mean_gap:.4f}"
            if rep > 0 else
            f"repair vs full reschedule: {rep:.2f}s vs {full:.2f}s"
        )
    return t.render() + "\n".join(lines)


# --------------------------------------------------------------------- #
# legacy single-link API (kept as a view over the subsystem)
# --------------------------------------------------------------------- #

@dataclass
class FailureRow:
    """Outcome of one injected single-link failure (legacy view)."""

    link: Link
    still_connected: bool
    c_c_before_failure: float
    c_c_degraded: Optional[float]      # old mapping, new distances
    c_c_rescheduled: Optional[float]   # new mapping, new distances

    @property
    def recovery(self) -> Optional[float]:
        """``C_c`` regained by rescheduling; ``None`` when it was skipped."""
        if self.c_c_degraded is None or self.c_c_rescheduled is None:
            return None
        return self.c_c_rescheduled - self.c_c_degraded


@dataclass
class FailureStudyResult:
    """All rows of one single-link failure study (legacy view)."""

    rows: List[FailureRow]

    @property
    def survivable(self) -> List[FailureRow]:
        """Rows whose failed network stayed connected."""
        return [r for r in self.rows if r.still_connected]

    def all_survivable_rescheduled_ok(self) -> bool:
        """Rescheduling never ends below the degraded mapping."""
        return all(
            r.c_c_rescheduled >= r.c_c_degraded - 1e-9
            for r in self.survivable
        )


def run_failure_study(
    setup: ExperimentSetup,
    *,
    links: Optional[Sequence[Link]] = None,
    seed: int = 1,
    workers: WorkersLike = None,
) -> FailureStudyResult:
    """Inject single-link failures and measure mapping degradation/recovery.

    ``links`` defaults to every link of the topology (24 cases for the
    paper's 16-switch network).  Thin wrapper over :func:`run_fault_study`
    preserving the original study's shape.
    """
    targets = list(links) if links is not None else list(setup.topology.links)
    scenarios = [FaultScenario(links=(l,)) for l in targets]
    res = run_fault_study(setup, scenarios, seed=seed, workers=workers)
    rows = [
        FailureRow(
            link=target,
            still_connected=row.connected,
            c_c_before_failure=row.c_c_before,
            c_c_degraded=row.c_c_degraded,
            c_c_rescheduled=row.c_c_rescheduled,
        )
        for target, row in zip(targets, res.rows)
    ]
    return FailureStudyResult(rows)


def render_failure_study(res: FailureStudyResult) -> str:
    """Text table of per-failure degradation and recovery (legacy view)."""
    t = Table(
        ["failed link", "connected", "C_c healthy", "C_c degraded",
         "C_c rescheduled", "recovery"],
        title="failure injection - single link failures",
    )
    for r in res.rows:
        t.add_row([
            f"{r.link[0]}-{r.link[1]}",
            "yes" if r.still_connected else "NO",
            r.c_c_before_failure,
            r.c_c_degraded,
            r.c_c_rescheduled,
            r.recovery,
        ], digits=3)
    surv = res.survivable
    summary = (
        f"\nsurvivable failures: {len(surv)}/{len(res.rows)}; "
        f"rescheduling recovered quality on "
        f"{sum(1 for r in surv if (r.recovery or 0) > 1e-9)} of them"
    )
    return t.render() + summary


__all__ = [
    "FaultRow",
    "FaultStudyResult",
    "run_fault_study",
    "simulate_fault_impact",
    "render_fault_study",
    "study_checkpoint_key",
    "FailureRow",
    "FailureStudyResult",
    "run_failure_study",
    "render_failure_study",
]
