"""Figure 1: the Tabu search trace ``F(P_i)`` on a 16-switch network.

The paper's figure shows the objective over the concatenated iterations of
10 random restarts: a peak at each restart (random mapping ⇒ ``F_G ≈ 1``),
a rapid descent within the first few iterations, and the global minimum
reached from only some of the starting points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import ExperimentSetup, paper_16switch_setup
from repro.search.base import SearchResult
from repro.util.asciiplot import line_plot
from repro.util.reporting import Table


@dataclass
class Fig1Result:
    """The trace and its structural features."""

    trace: List[float]
    restart_indices: List[int]
    best_value: float
    minima_per_restart: List[float]
    restarts_reaching_best: int

    @property
    def num_restarts(self) -> int:
        return len(self.restart_indices)


def run_fig1(setup: Optional[ExperimentSetup] = None,
             seed: int = 1) -> Fig1Result:
    """Run the paper's Tabu configuration and extract the Figure 1 trace."""
    setup = setup or paper_16switch_setup()
    objective = setup.scheduler.objective_for(setup.workload)
    result: SearchResult = setup.scheduler.search.run(objective, seed=seed)
    trace = result.trace
    starts = list(result.restart_indices)
    bounds = starts + [len(trace)]
    minima = [
        min(trace[bounds[i]:bounds[i + 1]]) for i in range(len(starts))
    ]
    tol = 1e-9
    reaching = sum(1 for m in minima if m <= result.best_value + tol)
    return Fig1Result(
        trace=trace,
        restart_indices=starts,
        best_value=result.best_value,
        minima_per_restart=minima,
        restarts_reaching_best=reaching,
    )


def render_fig1(res: Fig1Result) -> str:
    """Text rendering: per-restart segment summary plus the raw series."""
    t = Table(["restart", "start F", "min F", "iterations", "reaches best"],
              title="Figure 1 - Tabu search trace, 16-switch network")
    bounds = res.restart_indices + [len(res.trace)]
    for i in range(res.num_restarts):
        seg = res.trace[bounds[i]:bounds[i + 1]]
        t.add_row([
            i + 1,
            seg[0],
            min(seg),
            len(seg) - 1,
            "yes" if min(seg) <= res.best_value + 1e-9 else "no",
        ])
    plot = line_plot(
        {"F(P_i)": (list(range(len(res.trace))), res.trace)},
        width=72, height=14,
        x_label="iteration (all restarts concatenated)",
        y_label="F",
    )
    series = " ".join(f"{v:.3f}" for v in res.trace)
    return (
        t.render()
        + f"\nbest F(P_MIN) = {res.best_value:.6f} "
          f"(reached from {res.restarts_reaching_best}/{res.num_restarts} restarts)"
        + "\n\n" + plot
        + "\n\nF(P_i) series: " + series
    )


__all__ = ["Fig1Result", "run_fig1", "render_fig1"]
