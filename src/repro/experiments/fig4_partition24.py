"""Figure 4: the partition of the specially designed 24-switch network.

The network is four interconnected rings of six switches; the paper
reports that the scheduling technique "was able to identify the mentioned
topology", i.e. the found 4×6 partition coincides with the rings.  Our
designed network places ring ``r`` on switches ``6r .. 6r+5``, so the
expected clusters are exactly those blocks.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentSetup, paper_24switch_setup
from repro.experiments.fig2_partition16 import PartitionResult, render_partition


def expected_ring_clusters(ring_size: int = 6, rings: int = 4):
    """The designed clusters: one per ring."""
    return [tuple(range(r * ring_size, (r + 1) * ring_size)) for r in range(rings)]


def run_fig4(setup: Optional[ExperimentSetup] = None,
             seed: int = 1) -> PartitionResult:
    """Schedule the designed 24-switch network and check ring recovery."""
    setup = setup or paper_24switch_setup()
    res = setup.scheduler.schedule(setup.workload, seed=seed)
    return PartitionResult(
        topology_name=setup.topology.name,
        partition=res.partition,
        f_g=res.f_g,
        d_g=res.d_g,
        c_c=res.c_c,
        expected_clusters=expected_ring_clusters(),
    )


def render_fig4(res: PartitionResult) -> str:
    """Figure 4 as a text table."""
    return render_partition(
        res, "Figure 4 - 4-cluster partition, designed 24-switch network"
    )


__all__ = ["run_fig4", "render_fig4", "expected_ring_clusters"]
