"""Figure 5: simulation results for the designed 24-switch network.

Same experiment as Figure 3 on the four-ring network with 3 random
mappings.  Shape claims: the OP/random throughput gap is much larger than
on the 16-switch network (the paper reports ≈5×), because the sparse
inter-ring links collapse under the cross-ring traffic random mappings
generate; and ``C_c(OP)`` exceeds the 16-switch value (better-defined
clusters).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentSetup, paper_24switch_setup
from repro.experiments.fig3_sim16 import (
    SimFigureResult,
    render_sim_figure,
    run_sim_figure,
)
from repro.parallel import WorkersLike
from repro.simulation.config import SimulationConfig


def run_fig5(
    setup: Optional[ExperimentSetup] = None,
    *,
    num_random: int = 3,
    config: Optional[SimulationConfig] = None,
    workers: WorkersLike = None,
) -> SimFigureResult:
    """The paper's Figure 5: 24-switch designed network, OP vs 3 randoms."""
    setup = setup or paper_24switch_setup()
    return run_sim_figure("Figure 5", setup, num_random=num_random,
                          config=config, workers=workers)


def render_fig5(res: SimFigureResult) -> str:
    """Figure 5 as text tables + chart."""
    return render_sim_figure(res)


__all__ = ["run_fig5", "render_fig5"]
