"""Figure 2: the 4-cluster partition found for a 16-switch network.

The paper reports the partition ``(5,6,8,15) (0,1,11,12) (3,9,10,14)
(2,4,7,13)`` for its (unpublished) 16-switch topology: four clusters of
exactly four switches each.  On our seeded topology the switch ids differ,
but the structural claims are checked: the technique yields a balanced
4×4 partition whose ``F_G`` matches the exhaustive optimum on instances
small enough to enumerate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.mapping import Partition
from repro.experiments.common import ExperimentSetup, paper_16switch_setup
from repro.util.reporting import Table


@dataclass
class PartitionResult:
    """A found partition with its quality scores (used by Figs. 2 and 4)."""

    topology_name: str
    partition: Partition
    f_g: float
    d_g: float
    c_c: float
    expected_clusters: Optional[List[Tuple[int, ...]]] = None

    @property
    def matches_expected(self) -> Optional[bool]:
        if self.expected_clusters is None:
            return None
        expected = Partition.from_clusters(
            self.expected_clusters, self.partition.num_switches
        )
        return expected == self.partition


def run_fig2(setup: Optional[ExperimentSetup] = None,
             seed: int = 1) -> PartitionResult:
    """Schedule the 16-switch workload and report the partition found."""
    setup = setup or paper_16switch_setup()
    res = setup.scheduler.schedule(setup.workload, seed=seed)
    return PartitionResult(
        topology_name=setup.topology.name,
        partition=res.partition,
        f_g=res.f_g,
        d_g=res.d_g,
        c_c=res.c_c,
    )


def render_partition(res: PartitionResult, title: str) -> str:
    """Shared text rendering for the partition figures (2 and 4)."""
    t = Table(["cluster", "switches"], title=title)
    for i, members in enumerate(res.partition.clusters()):
        t.add_row([i, "(" + ",".join(map(str, members)) + ")"])
    lines = [t.render(),
             f"F_G={res.f_g:.4f}  D_G={res.d_g:.4f}  C_c={res.c_c:.4f}"]
    if res.expected_clusters is not None:
        lines.append(f"matches designed clusters: {res.matches_expected}")
    return "\n".join(lines)


def render_fig2(res: PartitionResult) -> str:
    """Figure 2 as a text table."""
    return render_partition(
        res, "Figure 2 - 4-cluster partition, 16-switch network"
    )


__all__ = ["PartitionResult", "run_fig2", "render_fig2", "render_partition"]
