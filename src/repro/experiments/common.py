"""Shared experiment infrastructure.

The paper's two showcase networks, mapping-set construction (the Tabu "OP"
mapping plus randomly generated mappings, each with its clustering
coefficient) and sweep execution over the S1…S9 load ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mapping import Partition, ProcessMapping, Workload
from repro.core.scheduler import CommunicationAwareScheduler
from repro.distance.cache import cached_routing_table
from repro.parallel import WorkersLike, parallel_map
from repro.routing.tables import RoutingTable
from repro.simulation.config import SimulationConfig
from repro.simulation.sweep import (
    LoadPoint,
    find_saturation_rate,
    make_load_points,
    run_load_sweep,
)
from repro.simulation.traffic import IntraClusterTraffic
from repro.topology.designed import four_rings_topology
from repro.topology.graph import Topology
from repro.topology.irregular import random_irregular_topology
from repro.util.rng import derive_seed


@dataclass
class MappingRecord:
    """One mapping under evaluation: the 'OP' mapping or a random one."""

    name: str                 # "OP" or "R1", "R2", ...
    partition: Partition
    mapping: ProcessMapping
    c_c: float
    f_g: float
    d_g: float


@dataclass
class ExperimentSetup:
    """A network plus everything the per-figure drivers need."""

    topology: Topology
    scheduler: CommunicationAwareScheduler
    workload: Workload
    routing_table: RoutingTable
    seed: int

    def op_mapping(self, seed: Optional[int] = None) -> MappingRecord:
        """The mapping produced by the paper's scheduling technique."""
        res = self.scheduler.schedule(
            self.workload, seed=self.seed if seed is None else seed
        )
        return MappingRecord("OP", res.partition, res.mapping,
                             res.c_c, res.f_g, res.d_g)

    def random_mappings(self, count: int,
                        seed: Optional[int] = None) -> List[MappingRecord]:
        """``count`` randomly generated mappings (the paper's R_i baselines)."""
        base = self.seed if seed is None else seed
        records = []
        for i in range(count):
            res = self.scheduler.random_schedule(
                self.workload, seed=derive_seed(base, "random-mapping", i)
            )
            records.append(
                MappingRecord(f"R{i + 1}", res.partition, res.mapping,
                              res.c_c, res.f_g, res.d_g)
            )
        return records

    def sweep(self, record: MappingRecord, rates: Sequence[float],
              config: SimulationConfig, *,
              workers: WorkersLike = None) -> List[LoadPoint]:
        """Simulate one mapping across the load ladder."""
        traffic = IntraClusterTraffic(record.mapping)
        cfg = replace(config, seed=derive_seed(config.seed, "mapping", record.name))
        return run_load_sweep(self.routing_table, traffic, rates, cfg,
                              workers=workers)

    def saturation_throughput(self, record: MappingRecord,
                              config: SimulationConfig) -> float:
        """Deep-saturation accepted traffic (the paper's 'throughput')."""
        return _mapping_saturation(
            (self.routing_table, record.mapping, record.name, config)
        )

    def saturation_throughputs(self, records: Sequence[MappingRecord],
                               config: SimulationConfig, *,
                               workers: WorkersLike = None) -> Dict[str, float]:
        """Saturation probes for several mappings, optionally in parallel.

        Each mapping's probe derives its seeds from the mapping *name*, so
        the probes are independent jobs and the result is identical whether
        they run serially or on a process pool.
        """
        jobs: List[_SaturationJob] = [
            (self.routing_table, r.mapping, r.name, config) for r in records
        ]
        values = parallel_map(_mapping_saturation, jobs, workers=workers)
        return {r.name: v for r, v in zip(records, values)}

    def load_ladder(self, config: SimulationConfig, n: int = 9) -> List[float]:
        """S1…S9 rates: up to ~1.3× the OP mapping's saturation rate.

        Using the OP mapping to place S9 guarantees every random mapping is
        deep in saturation at the top of the ladder, like the paper's plots.
        """
        op = self.op_mapping()
        traffic = IntraClusterTraffic(op.mapping)
        sat = find_saturation_rate(self.routing_table, traffic, config)
        return make_load_points(1.3 * sat["rate"], n=n)


_SaturationJob = Tuple[RoutingTable, ProcessMapping, str, SimulationConfig]


def _mapping_saturation(job: _SaturationJob) -> float:
    """One mapping's deep-saturation probe (top-level for pickling)."""
    table, mapping, name, config = job
    traffic = IntraClusterTraffic(mapping)
    cfg = replace(config, seed=derive_seed(config.seed, "sat", name))
    return find_saturation_rate(table, traffic, cfg)["throughput"]


def paper_16switch_setup(seed: int = 42,
                         topology_seed: Optional[int] = None) -> ExperimentSetup:
    """The paper's 16-switch (64-workstation) random irregular network.

    4 logical clusters of 16 processes each (4 switches per cluster).
    """
    tseed = seed if topology_seed is None else topology_seed
    topo = random_irregular_topology(16, seed=tseed, name=f"paper-16sw-t{tseed}")
    sched = CommunicationAwareScheduler(topo)
    workload = Workload.uniform(4, 16)
    return ExperimentSetup(
        topology=topo,
        scheduler=sched,
        workload=workload,
        routing_table=cached_routing_table(sched.routing),
        seed=seed,
    )


def paper_24switch_setup(seed: int = 42) -> ExperimentSetup:
    """The specially designed 24-switch network (four interconnected rings).

    4 logical clusters of 24 processes each (6 switches per cluster).
    """
    topo = four_rings_topology()
    sched = CommunicationAwareScheduler(topo)
    workload = Workload.uniform(4, 24)
    return ExperimentSetup(
        topology=topo,
        scheduler=sched,
        workload=workload,
        routing_table=cached_routing_table(sched.routing),
        seed=seed,
    )


__all__ = [
    "MappingRecord",
    "ExperimentSetup",
    "paper_16switch_setup",
    "paper_24switch_setup",
]
