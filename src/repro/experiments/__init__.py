"""Per-figure experiment drivers.

Each module regenerates one figure of the paper's evaluation section as
structured data plus a text rendering (the benchmark harness prints these):

- :mod:`~repro.experiments.fig1_tabu_trace` — Figure 1, the ``F(P_i)``
  trace of the Tabu search on a 16-switch network;
- :mod:`~repro.experiments.fig2_partition16` — Figure 2, the 4-cluster
  partition found for the 16-switch network;
- :mod:`~repro.experiments.fig3_sim16` — Figure 3, latency/traffic curves
  for the OP and random mappings on the 16-switch network;
- :mod:`~repro.experiments.fig4_partition24` — Figure 4, the partition of
  the specially designed 24-switch network;
- :mod:`~repro.experiments.fig5_sim24` — Figure 5, simulation of the
  24-switch network;
- :mod:`~repro.experiments.fig6_correlation` — Figure 6, correlation of
  the clustering coefficient with network performance per load point.

:mod:`~repro.experiments.common` holds the shared setup (the paper's
16-switch and 24-switch networks, mapping generation, sweep execution).
"""

from repro.experiments.common import (
    ExperimentSetup,
    MappingRecord,
    paper_16switch_setup,
    paper_24switch_setup,
)
from repro.experiments.fig1_tabu_trace import run_fig1, render_fig1, Fig1Result
from repro.experiments.fig2_partition16 import run_fig2, render_fig2, PartitionResult
from repro.experiments.fig3_sim16 import run_fig3, render_fig3, SimFigureResult
from repro.experiments.fig4_partition24 import run_fig4, render_fig4
from repro.experiments.fig5_sim24 import run_fig5, render_fig5
from repro.experiments.fig6_correlation import run_fig6, render_fig6, Fig6Result
from repro.experiments.survey import run_survey, render_survey, SurveyResult
from repro.experiments.failures import (
    run_failure_study,
    render_failure_study,
    FailureStudyResult,
)

__all__ = [
    "ExperimentSetup",
    "MappingRecord",
    "paper_16switch_setup",
    "paper_24switch_setup",
    "run_fig1", "render_fig1", "Fig1Result",
    "run_fig2", "render_fig2", "PartitionResult",
    "run_fig3", "render_fig3", "SimFigureResult",
    "run_fig4", "render_fig4",
    "run_fig5", "render_fig5",
    "run_fig6", "render_fig6", "Fig6Result",
    "run_survey", "render_survey", "SurveyResult",
    "run_failure_study", "render_failure_study", "FailureStudyResult",
]
