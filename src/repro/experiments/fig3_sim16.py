"""Figure 3: simulation results for the 16-switch network.

Latency-vs-accepted-traffic curves for the mapping produced by the
scheduling technique (label "OP") against randomly generated mappings
(labels "R_i"), each annotated with its clustering coefficient, over the
load points S1…S9.  Shape claims: the OP mapping saturates at markedly
higher accepted traffic (the paper reports ≈85 % higher than any random
mapping), and ``C_c`` is visibly larger for OP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import (
    ExperimentSetup,
    MappingRecord,
    paper_16switch_setup,
)
from repro.obs import trace as _trace
from repro.parallel import WorkersLike
from repro.simulation.config import SimulationConfig
from repro.simulation.sweep import LoadPoint
from repro.util.asciiplot import line_plot
from repro.util.reporting import Table


@dataclass
class SimFigureResult:
    """Sweep data for one network (used by Figs. 3 and 5)."""

    figure: str
    topology_name: str
    mappings: List[MappingRecord]
    rates: List[float]
    sweeps: Dict[str, List[LoadPoint]]          # mapping name -> S1..S9
    saturation_throughput: Dict[str, float]     # mapping name -> flits/sw/cycle

    @property
    def op_record(self) -> MappingRecord:
        return next(m for m in self.mappings if m.name == "OP")

    @property
    def random_records(self) -> List[MappingRecord]:
        return [m for m in self.mappings if m.name != "OP"]

    @property
    def op_over_best_random(self) -> float:
        """Saturation-throughput ratio OP / best random mapping."""
        best_random = max(
            self.saturation_throughput[m.name] for m in self.random_records
        )
        return self.saturation_throughput["OP"] / best_random


def default_sim_config(seed: int = 7) -> SimulationConfig:
    """The evaluation configuration shared by Figures 3, 5 and 6."""
    return SimulationConfig(
        message_length=16,
        buffer_flits=2,
        warmup_cycles=600,
        measure_cycles=2500,
        seed=seed,
    )


def run_sim_figure(
    figure: str,
    setup: ExperimentSetup,
    *,
    num_random: int,
    config: Optional[SimulationConfig] = None,
    num_points: int = 9,
    workers: WorkersLike = None,
) -> SimFigureResult:
    """Shared driver for the Figure 3 / Figure 5 experiments.

    ``workers`` fans the per-mapping load sweeps and saturation probes out
    onto a process pool; every simulation's seed is derived from the
    mapping name and sweep-point index alone, so the result is identical
    to a serial run.
    """
    config = config or default_sim_config()
    with _trace.span(f"figure.{figure}", topology=setup.topology.name,
                     num_random=num_random, engine=config.engine):
        op = setup.op_mapping()
        randoms = setup.random_mappings(num_random)
        mappings = [op] + randoms

        rates = setup.load_ladder(config, n=num_points)
        sweeps = {}
        for m in mappings:
            with _trace.span("figure.sweep", mapping=m.name, c_c=m.c_c):
                sweeps[m.name] = setup.sweep(m, rates, config,
                                             workers=workers)
        # Throughput = best accepted traffic observed anywhere: the
        # dedicated deep-saturation probe can land past the knee where
        # accepted dips slightly (tree saturation), so fold in the ladder
        # maximum.
        probes = setup.saturation_throughputs(mappings, config,
                                              workers=workers)
        throughput = {}
        for m in mappings:
            ladder_max = max(
                p.result.accepted_flits_per_switch_cycle
                for p in sweeps[m.name]
            )
            throughput[m.name] = max(probes[m.name], ladder_max)
            _trace.event("figure.mapping", figure=figure, mapping=m.name,
                         c_c=m.c_c, throughput=throughput[m.name])
    return SimFigureResult(
        figure=figure,
        topology_name=setup.topology.name,
        mappings=mappings,
        rates=rates,
        sweeps=sweeps,
        saturation_throughput=throughput,
    )


def run_fig3(
    setup: Optional[ExperimentSetup] = None,
    *,
    num_random: int = 9,
    config: Optional[SimulationConfig] = None,
    workers: WorkersLike = None,
) -> SimFigureResult:
    """The paper's Figure 3: 16-switch network, OP vs 9 random mappings."""
    setup = setup or paper_16switch_setup()
    return run_sim_figure("Figure 3", setup, num_random=num_random,
                          config=config, workers=workers)


def render_sim_figure(res: SimFigureResult) -> str:
    """Accepted-traffic and latency tables plus the latency/traffic chart."""
    lines = [f"{res.figure} - simulation results, {res.topology_name}"]
    t = Table(["mapping", "C_c"] + [f"S{i+1} acc" for i in range(len(res.rates))]
              + ["sat. throughput"])
    for m in res.mappings:
        points = res.sweeps[m.name]
        t.add_row(
            [m.name, m.c_c]
            + [p.result.accepted_flits_per_switch_cycle for p in points]
            + [res.saturation_throughput[m.name]],
            digits=3,
        )
    lines.append(t.render())

    lt = Table(["mapping"] + [f"S{i+1} lat" for i in range(len(res.rates))],
               title="average message latency (cycles)")
    for m in res.mappings:
        points = res.sweeps[m.name]
        lt.add_row([m.name] + [p.result.avg_latency for p in points], digits=4)
    lines.append(lt.render())

    # The paper's plot: latency vs accepted traffic per mapping.  Cap the
    # random series shown to keep the chart readable; the tables above
    # carry the full data.
    shown = [res.op_record] + res.random_records[:4]
    series = {}
    for m in shown:
        pts = res.sweeps[m.name]
        series[f"{m.name} (C_c={m.c_c:.2f})"] = (
            [p.result.accepted_flits_per_switch_cycle for p in pts],
            [p.result.avg_latency for p in pts],
        )
    lines.append(line_plot(
        series, width=66, height=16,
        x_label="accepted traffic (flits/switch/cycle)",
        y_label="average latency (cycles)",
        y_log=True,
    ))
    lines.append(
        f"OP saturation throughput / best random: {res.op_over_best_random:.2f}x"
    )
    return "\n\n".join(lines)


def render_fig3(res: SimFigureResult) -> str:
    """Figure 3 as text tables + chart."""
    return render_sim_figure(res)


__all__ = [
    "SimFigureResult",
    "default_sim_config",
    "run_sim_figure",
    "run_fig3",
    "render_fig3",
    "render_sim_figure",
]
