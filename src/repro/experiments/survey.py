"""Multi-topology survey (Section 5.2, closing claim).

"Although they are not shown here due to space limitations, we have also
studied this correlation index for other network examples.  The
correlation index for any of the considered networks was higher than 70 %
for simulation points at both low network load and network saturation."

:func:`run_survey` repeats the Figure 3 + Figure 6 experiment over a set
of freshly generated topologies and reports, per topology, the OP/random
throughput ratio and the low-load / saturation correlation of ``C_c``
with performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.common import ExperimentSetup, paper_16switch_setup
from repro.experiments.fig3_sim16 import run_sim_figure
from repro.experiments.fig6_correlation import correlations_from_sim
from repro.simulation.config import SimulationConfig
from repro.util.reporting import Table


@dataclass
class SurveyRow:
    """One topology's results in the survey."""

    topology: str
    num_switches: int
    c_c_op: float
    op_over_best_random: float
    low_load_corr: float
    saturation_corr: float


@dataclass
class SurveyResult:
    rows: List[SurveyRow]

    def all_correlations_above(self, threshold: float) -> bool:
        """Both correlation ends exceed ``threshold`` on every topology."""
        return all(
            r.low_load_corr > threshold and r.saturation_corr > threshold
            for r in self.rows
        )

    def min_ratio(self) -> float:
        """Worst OP/random throughput ratio across the surveyed networks."""
        return min(r.op_over_best_random for r in self.rows)


def run_survey(
    setups: Optional[Sequence[ExperimentSetup]] = None,
    *,
    topology_seeds: Sequence[int] = (42, 43, 44),
    num_random: int = 5,
    num_points: int = 9,
    config: Optional[SimulationConfig] = None,
) -> SurveyResult:
    """Run the correlation study over several networks.

    ``setups`` overrides the default family (16-switch random irregular
    networks with the given seeds).
    """
    if setups is None:
        setups = [
            paper_16switch_setup(seed=42, topology_seed=s)
            for s in topology_seeds
        ]
    config = config or SimulationConfig(
        warmup_cycles=400, measure_cycles=1500, seed=7
    )
    rows = []
    for setup in setups:
        sim = run_sim_figure("survey", setup, num_random=num_random,
                             config=config, num_points=num_points)
        corr = correlations_from_sim(sim)
        rows.append(SurveyRow(
            topology=setup.topology.name,
            num_switches=setup.topology.num_switches,
            c_c_op=sim.op_record.c_c,
            op_over_best_random=sim.op_over_best_random,
            low_load_corr=corr.low_load_power_corr(),
            saturation_corr=corr.saturation_power_corr(),
        ))
    return SurveyResult(rows)


def render_survey(res: SurveyResult) -> str:
    """Survey results as a text table."""
    t = Table(
        ["topology", "switches", "C_c (OP)", "OP/random", "corr low load",
         "corr saturation"],
        title="survey - C_c/performance correlation across networks "
              "(Section 5.2 closing claim)",
    )
    for r in res.rows:
        t.add_row([r.topology, r.num_switches, r.c_c_op,
                   r.op_over_best_random, r.low_load_corr,
                   r.saturation_corr], digits=3)
    return t.render()


__all__ = ["SurveyRow", "SurveyResult", "run_survey", "render_survey"]
