"""Figure 6: correlation of the clustering coefficient with performance.

For each load point S1…S9 of the Figure 3 experiment, the Pearson
correlation across mappings between ``C_c`` and network performance.  The
paper reports ≈85 % at low load (S1–S4), ≈75 % in deep saturation
(S7–S9), and an insignificant value at S5–S6 where mappings straddle their
saturation points.

"Performance" needs a per-point scalar.  At low load every mapping accepts
all offered traffic, so accepted traffic carries no signal there — latency
does; in saturation the roles reverse.  We therefore report correlations
against both *negative average latency* and *accepted traffic*, plus a
combined measure (accepted / latency, a network power metric) that is
meaningful across the whole ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import ExperimentSetup
from repro.experiments.fig3_sim16 import SimFigureResult, run_fig3
from repro.simulation.config import SimulationConfig
from repro.util.asciiplot import bar_chart
from repro.util.reporting import Table
from repro.util.stats import pearson


@dataclass
class Fig6Result:
    """Per-load-point correlations of C_c with performance."""

    labels: List[str]                       # "S1" ... "S9"
    c_c: List[float]                        # per mapping, order as sweeps
    mapping_names: List[str]
    corr_neg_latency: List[float]
    corr_accepted: List[float]
    corr_power: List[float]                 # accepted / latency

    def low_load_power_corr(self, points: int = 4) -> float:
        """Mean power-metric correlation over the first ``points`` loads."""
        vals = [v for v in self.corr_power[:points] if v == v]
        return sum(vals) / len(vals) if vals else float("nan")

    def saturation_power_corr(self, points: int = 3) -> float:
        """Mean power-metric correlation over the last ``points`` loads."""
        vals = [v for v in self.corr_power[-points:] if v == v]
        return sum(vals) / len(vals) if vals else float("nan")


def correlations_from_sim(res: SimFigureResult) -> Fig6Result:
    """Compute the Figure 6 correlations from a Figure 3/5 sweep result."""
    names = [m.name for m in res.mappings]
    c_c = [m.c_c for m in res.mappings]
    n_points = len(res.rates)
    corr_lat, corr_acc, corr_pow = [], [], []
    for k in range(n_points):
        lat = [res.sweeps[n][k].result.avg_latency for n in names]
        acc = [res.sweeps[n][k].result.accepted_flits_per_switch_cycle
               for n in names]
        power = [a / l if l > 0 else float("nan") for a, l in zip(acc, lat)]
        corr_lat.append(pearson(c_c, [-x for x in lat]))
        corr_acc.append(pearson(c_c, acc))
        corr_pow.append(pearson(c_c, power))
    return Fig6Result(
        labels=[f"S{i + 1}" for i in range(n_points)],
        c_c=c_c,
        mapping_names=names,
        corr_neg_latency=corr_lat,
        corr_accepted=corr_acc,
        corr_power=corr_pow,
    )


def run_fig6(
    setup: Optional[ExperimentSetup] = None,
    *,
    num_random: int = 9,
    config: Optional[SimulationConfig] = None,
    sim_result: Optional[SimFigureResult] = None,
) -> Fig6Result:
    """Figure 6 from a fresh (or provided) Figure 3 sweep."""
    if sim_result is None:
        sim_result = run_fig3(setup, num_random=num_random, config=config)
    return correlations_from_sim(sim_result)


def render_fig6(res: Fig6Result) -> str:
    """Figure 6 as a correlation table plus bar chart."""
    t = Table(
        ["point", "corr(C_c, -latency)", "corr(C_c, accepted)",
         "corr(C_c, accepted/latency)"],
        title="Figure 6 - correlation of C_c with network performance",
    )
    for i, label in enumerate(res.labels):
        t.add_row([label, res.corr_neg_latency[i], res.corr_accepted[i],
                   res.corr_power[i]], digits=3)
    chart = bar_chart(
        dict(zip(res.labels, res.corr_power)),
        width=44, lo=0.0, hi=1.0,
        title="corr(C_c, accepted/latency) per load point:",
    )
    return (
        t.render()
        + "\n\n" + chart
        + f"\n\nlow-load mean (S1-S4):   {res.low_load_power_corr():.3f}"
        + f"\nsaturation mean (S7-S9): {res.saturation_power_corr():.3f}"
    )


__all__ = ["Fig6Result", "correlations_from_sim", "run_fig6", "render_fig6"]
