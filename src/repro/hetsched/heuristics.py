"""Classical mapping heuristics for meta-tasks on heterogeneous machines.

The computation-aware baselines referenced by the paper (its [1, 12, 16]):

- **OLB** (Opportunistic Load Balancing): next task → machine that becomes
  idle soonest, ignoring execution times.
- **MET** (Minimum Execution Time; the paper's "UDA", User-Directed
  Assignment): next task → machine with the smallest ETC for it, ignoring
  current load.
- **MCT** (Minimum Completion Time; Armstrong's "Fast Greedy"): next task →
  machine with the earliest completion time for it.
- **Min-min**: repeatedly schedule the task whose best completion time is
  smallest, on that machine.
- **Max-min**: like Min-min, but pick the task whose best completion time
  is *largest* (front-loads the big tasks).
- **Duplex**: run Min-min and Max-min, keep the better makespan.

All operate on an ETC matrix (see :mod:`repro.hetsched.workload`) and
produce a :class:`MachineSchedule`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.util.rng import SeedLike


@dataclass
class MachineSchedule:
    """The outcome of mapping a meta-task onto machines.

    ``assignment[t]`` is the machine of task ``t``; ``ready[m]`` the time
    machine ``m`` finishes its queue (so ``makespan = ready.max()``).
    """

    assignment: np.ndarray
    ready: np.ndarray
    method: str

    @property
    def makespan(self) -> float:
        return float(self.ready.max())

    def tasks_of(self, machine: int) -> np.ndarray:
        """Task ids assigned to ``machine``."""
        return np.nonzero(self.assignment == machine)[0]

    def validate(self, etc: np.ndarray) -> None:
        """Recompute machine ready times from the assignment and compare."""
        t, m = etc.shape
        if self.assignment.shape != (t,):
            raise ValueError("assignment length does not match ETC tasks")
        if (self.assignment < 0).any() or (self.assignment >= m).any():
            raise ValueError("assignment references unknown machines")
        recomputed = np.zeros(m)
        for task in range(t):
            recomputed[self.assignment[task]] += etc[task, self.assignment[task]]
        if not np.allclose(recomputed, self.ready, rtol=1e-9, atol=1e-9):
            raise ValueError("ready times inconsistent with assignment")


class MappingHeuristic(ABC):
    """Maps every task of an ETC matrix onto a machine."""

    name: str = "heuristic"

    @abstractmethod
    def schedule(self, etc: np.ndarray, seed: SeedLike = None) -> MachineSchedule:
        """Produce a full assignment.  ``seed`` only matters for heuristics
        that break ties randomly or shuffle task arrival order."""

    @staticmethod
    def _check(etc: np.ndarray) -> np.ndarray:
        a = np.asarray(etc, dtype=float)
        if a.ndim != 2 or a.size == 0:
            raise ValueError(f"ETC must be a non-empty 2-D matrix, got {a.shape}")
        if (a <= 0).any():
            raise ValueError("ETC entries must be strictly positive")
        return a


class OLB(MappingHeuristic):
    """Opportunistic Load Balancing: earliest-idle machine, ETC ignored."""

    name = "olb"

    def schedule(self, etc: np.ndarray, seed: SeedLike = None) -> MachineSchedule:
        etc = self._check(etc)
        t, m = etc.shape
        ready = np.zeros(m)
        assignment = np.empty(t, dtype=np.int64)
        for task in range(t):
            machine = int(np.argmin(ready))
            assignment[task] = machine
            ready[machine] += etc[task, machine]
        return MachineSchedule(assignment, ready, self.name)


class MET(MappingHeuristic):
    """Minimum Execution Time (UDA): per-task best machine, load ignored."""

    name = "met"

    def schedule(self, etc: np.ndarray, seed: SeedLike = None) -> MachineSchedule:
        etc = self._check(etc)
        t, m = etc.shape
        ready = np.zeros(m)
        assignment = np.argmin(etc, axis=1).astype(np.int64)
        for task in range(t):
            ready[assignment[task]] += etc[task, assignment[task]]
        return MachineSchedule(assignment, ready, self.name)


class MCT(MappingHeuristic):
    """Minimum Completion Time (Fast Greedy): arrival order, best finish."""

    name = "mct"

    def schedule(self, etc: np.ndarray, seed: SeedLike = None) -> MachineSchedule:
        etc = self._check(etc)
        t, m = etc.shape
        ready = np.zeros(m)
        assignment = np.empty(t, dtype=np.int64)
        for task in range(t):
            completion = ready + etc[task]
            machine = int(np.argmin(completion))
            assignment[task] = machine
            ready[machine] = completion[machine]
        return MachineSchedule(assignment, ready, self.name)


class _MinMaxBase(MappingHeuristic):
    """Shared machinery of Min-min and Max-min."""

    pick_max = False

    def schedule(self, etc: np.ndarray, seed: SeedLike = None) -> MachineSchedule:
        etc = self._check(etc)
        t, m = etc.shape
        ready = np.zeros(m)
        assignment = np.full(t, -1, dtype=np.int64)
        unscheduled = list(range(t))
        while unscheduled:
            # Best completion time and machine per unscheduled task.
            sub = etc[unscheduled] + ready[None, :]
            best_machines = np.argmin(sub, axis=1)
            best_times = sub[np.arange(len(unscheduled)), best_machines]
            idx = int(np.argmax(best_times) if self.pick_max
                      else np.argmin(best_times))
            task = unscheduled.pop(idx)
            machine = int(best_machines[idx])
            assignment[task] = machine
            ready[machine] = float(best_times[idx])
        return MachineSchedule(assignment, ready, self.name)


class MinMin(_MinMaxBase):
    """Min-min: smallest best-completion-time task first."""

    name = "minmin"
    pick_max = False


class MaxMin(_MinMaxBase):
    """Max-min: largest best-completion-time task first."""

    name = "maxmin"
    pick_max = True


class Duplex(MappingHeuristic):
    """Best of Min-min and Max-min by makespan."""

    name = "duplex"

    def schedule(self, etc: np.ndarray, seed: SeedLike = None) -> MachineSchedule:
        a = MinMin().schedule(etc, seed)
        b = MaxMin().schedule(etc, seed)
        winner = a if a.makespan <= b.makespan else b
        return MachineSchedule(winner.assignment, winner.ready, self.name)


HEURISTICS: Dict[str, MappingHeuristic] = {
    h.name: h for h in (OLB(), MET(), MCT(), MinMin(), MaxMin(), Duplex())
}


__all__ = [
    "MachineSchedule",
    "MappingHeuristic",
    "OLB",
    "MET",
    "MCT",
    "MinMin",
    "MaxMin",
    "Duplex",
    "HEURISTICS",
]
