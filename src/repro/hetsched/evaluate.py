"""Metrics over machine schedules."""

from __future__ import annotations

import numpy as np

from repro.hetsched.heuristics import MachineSchedule


def makespan(schedule: MachineSchedule) -> float:
    """Completion time of the last machine to finish."""
    return schedule.makespan


def machine_loads(schedule: MachineSchedule, etc: np.ndarray) -> np.ndarray:
    """Busy time per machine implied by the assignment."""
    etc = np.asarray(etc, dtype=float)
    loads = np.zeros(etc.shape[1])
    for task, machine in enumerate(schedule.assignment):
        loads[machine] += etc[task, machine]
    return loads


def flowtime(schedule: MachineSchedule, etc: np.ndarray) -> float:
    """Sum of task completion times with FIFO per-machine execution.

    Tasks run on each machine in ascending task-id order (the order the
    list heuristics assigned them).
    """
    etc = np.asarray(etc, dtype=float)
    clock = np.zeros(etc.shape[1])
    total = 0.0
    for task in range(etc.shape[0]):
        machine = int(schedule.assignment[task])
        clock[machine] += etc[task, machine]
        total += clock[machine]
    return total


def utilization(schedule: MachineSchedule, etc: np.ndarray) -> float:
    """Mean machine busy fraction over the makespan (1 = perfectly level)."""
    loads = machine_loads(schedule, etc)
    ms = schedule.makespan
    if ms <= 0:
        raise ValueError("makespan must be positive")
    return float(loads.mean() / ms)


__all__ = ["makespan", "machine_loads", "flowtime", "utilization"]
