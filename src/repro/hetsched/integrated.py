"""The integrated computation/communication strategy selector.

Section 1 of the paper: "The scheduler would choose either a
computation-aware or a communication-aware task scheduling strategy
depending on the kind of requirements that leads to the system performance
bottleneck."  The paper defers this integration to future work; this
module implements a transparent version of it so the two halves of the
library compose:

1. estimate the *communication pressure*: the flit load the workload would
   offer per switch, against a capacity proxy derived from the topology
   (links per switch × their bandwidth, discounted by the mean routed
   distance — every hop consumes one link-cycle per flit);
2. estimate the *computation pressure*: mean machine utilization a
   load-balancing heuristic would reach on the ETC matrix;
3. pick the communication-aware mapping (Tabu over the distance table)
   when communication pressure dominates, the computational heuristic's
   placement otherwise.

The decision rule is deliberately simple and fully inspectable via
:class:`BottleneckEstimate`; it is an *extension*, and the benchmarks
treat it as an ablation rather than a paper claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.mapping import Workload
from repro.core.scheduler import CommunicationAwareScheduler, ScheduleResult
from repro.hetsched.heuristics import MappingHeuristic, MinMin
from repro.topology.graph import Topology
from repro.util.rng import SeedLike


@dataclass
class BottleneckEstimate:
    """Inputs and verdict of the strategy choice."""

    comm_offered_flits_per_switch: float
    comm_capacity_flits_per_switch: float
    comp_utilization: float
    comm_pressure: float     # offered / capacity
    comp_pressure: float     # utilization (0..1+, >1 impossible, ~1 = bound)
    bottleneck: str          # "communication" or "computation"

    def summary(self) -> str:
        """One-line rendering of both pressures and the verdict."""
        return (
            f"comm {self.comm_offered_flits_per_switch:.3f}/"
            f"{self.comm_capacity_flits_per_switch:.3f} flits/sw/cycle "
            f"(pressure {self.comm_pressure:.2f}) vs comp utilization "
            f"{self.comp_utilization:.2f} -> {self.bottleneck}"
        )


class IntegratedScheduler:
    """Choose computation- or communication-aware mapping per workload.

    Parameters
    ----------
    topology:
        The machine.
    comm_scheduler:
        Communication-aware side (defaults to the paper's Tabu pipeline).
    comp_heuristic:
        Computation-aware side (defaults to Min-min).
    threshold:
        Communication wins when ``comm_pressure > threshold * comp_pressure``.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        comm_scheduler: Optional[CommunicationAwareScheduler] = None,
        comp_heuristic: Optional[MappingHeuristic] = None,
        threshold: float = 1.0,
    ):
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self.topology = topology
        self.comm_scheduler = comm_scheduler or CommunicationAwareScheduler(topology)
        self.comp_heuristic = comp_heuristic or MinMin()
        self.threshold = threshold

    # ------------------------------------------------------------------ #

    def estimate_bottleneck(
        self,
        workload: Workload,
        etc: np.ndarray,
        flits_per_process_cycle: float,
    ) -> BottleneckEstimate:
        """Score both pressures for a workload.

        ``flits_per_process_cycle`` is the measured/estimated injection
        bandwidth demand of one process (the paper's future-work
        "measurement of the communication requirements").
        """
        if flits_per_process_cycle < 0:
            raise ValueError("flits_per_process_cycle must be >= 0")
        topo = self.topology
        n_proc = workload.total_processes
        offered = n_proc * flits_per_process_cycle / topo.num_switches

        # Capacity proxy: each switch contributes `degree` unidirectional
        # link-cycles per cycle in each direction; a flit travelling d hops
        # consumes d of them, so deliverable flits/switch/cycle is bounded
        # by links_per_switch / mean_distance.  Use the routed distances.
        dist = self.comm_scheduler.routing.distances().astype(float)
        n = topo.num_switches
        mean_dist = float(
            (dist.sum() - np.trace(dist)) / max(1, n * (n - 1))
        )
        links_per_switch = 2.0 * topo.num_links / topo.num_switches
        capacity = links_per_switch / max(mean_dist, 1e-9)

        comm_pressure = offered / max(capacity, 1e-12)

        schedule = self.comp_heuristic.schedule(np.asarray(etc, dtype=float))
        loads = np.zeros(np.asarray(etc).shape[1])
        for task, machine in enumerate(schedule.assignment):
            loads[machine] += etc[task, machine]
        comp_pressure = float(loads.mean() / max(schedule.makespan, 1e-12))

        bottleneck = (
            "communication"
            if comm_pressure > self.threshold * comp_pressure
            else "computation"
        )
        return BottleneckEstimate(
            comm_offered_flits_per_switch=offered,
            comm_capacity_flits_per_switch=capacity,
            comp_utilization=comp_pressure,
            comm_pressure=comm_pressure,
            comp_pressure=comp_pressure,
            bottleneck=bottleneck,
        )

    def schedule(
        self,
        workload: Workload,
        etc: np.ndarray,
        flits_per_process_cycle: float,
        seed: SeedLike = None,
    ) -> "IntegratedResult":
        """Pick a strategy and produce the chosen mapping."""
        estimate = self.estimate_bottleneck(workload, etc, flits_per_process_cycle)
        if estimate.bottleneck == "communication":
            result = self.comm_scheduler.schedule(workload, seed=seed)
            return IntegratedResult(estimate, comm_result=result)
        machine_schedule = self.comp_heuristic.schedule(
            np.asarray(etc, dtype=float), seed
        )
        return IntegratedResult(estimate, comp_result=machine_schedule)


@dataclass
class IntegratedResult:
    """Outcome of the integrated decision (exactly one side is set)."""

    estimate: BottleneckEstimate
    comm_result: Optional[ScheduleResult] = None
    comp_result: Optional[object] = None

    @property
    def strategy(self) -> str:
        return "communication" if self.comm_result is not None else "computation"


__all__ = ["IntegratedScheduler", "IntegratedResult", "BottleneckEstimate"]
