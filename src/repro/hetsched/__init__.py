"""Computation-aware scheduling baselines and the integrated strategy.

The paper situates its contribution among the classical heterogeneous-
computing mapping heuristics (OLB, UDA/MET, Fast Greedy/MCT, Min-min,
Max-min — its references [1, 12, 16]) and sketches, in its introduction,
an *ideal* scheduler that "would choose either a computation-aware or a
communication-aware task scheduling strategy depending on the kind of
requirements that leads to the system performance bottleneck".

This package supplies that computational side:

- :mod:`~repro.hetsched.workload` — expected-time-to-compute (ETC) matrix
  generation in the Braun et al. style (task/machine heterogeneity,
  consistent / semiconsistent / inconsistent);
- :mod:`~repro.hetsched.heuristics` — OLB, MET (a.k.a. UDA), MCT (a.k.a.
  Fast Greedy), Min-min, Max-min and Duplex;
- :mod:`~repro.hetsched.evaluate` — makespan / flowtime / utilization;
- :mod:`~repro.hetsched.integrated` — the bottleneck-driven strategy
  selector combining these heuristics with the communication-aware
  technique of :mod:`repro.core`.
"""

from repro.hetsched.workload import generate_etc, EtcConsistency
from repro.hetsched.heuristics import (
    MappingHeuristic,
    MachineSchedule,
    OLB,
    MET,
    MCT,
    MinMin,
    MaxMin,
    Duplex,
    HEURISTICS,
)
from repro.hetsched.evaluate import makespan, flowtime, machine_loads, utilization
from repro.hetsched.integrated import IntegratedScheduler, BottleneckEstimate

__all__ = [
    "generate_etc",
    "EtcConsistency",
    "MappingHeuristic",
    "MachineSchedule",
    "OLB",
    "MET",
    "MCT",
    "MinMin",
    "MaxMin",
    "Duplex",
    "HEURISTICS",
    "makespan",
    "flowtime",
    "machine_loads",
    "utilization",
    "IntegratedScheduler",
    "BottleneckEstimate",
]
