"""Fault injection, degraded-mode scheduling and repair search.

The subsystem turns the one-off single-link failure study into first-class
infrastructure:

- :mod:`repro.faults.model` — seedable :class:`FaultScenario` values
  (permanent link/switch failures, multi-fault), scenario generators and
  serialization;
- :mod:`repro.faults.degrade` — the single :func:`degrade` entry point:
  surviving network, connected components, reconfigured up*/down* routing
  and distance tables, connectivity/deadlock verification;
- :mod:`repro.faults.reschedule` — degraded-mode scheduling: evaluation of
  stale mappings, warm-start Tabu repair, full rescheduling, and graceful
  per-component scheduling when a fault partitions the network.
"""

from repro.faults.degrade import (
    ComponentNetwork,
    DegradedNetwork,
    VerificationReport,
    degrade,
)
from repro.faults.model import (
    FaultScenario,
    sample_fault_scenarios,
    single_link_scenarios,
    single_switch_scenarios,
)
from repro.faults.reschedule import (
    ClusterPlacement,
    DegradedSchedule,
    RepairComparison,
    TimedSchedule,
    compare_repair_strategies,
    evaluate_partition,
    full_reschedule,
    repair_schedule,
    schedule_degraded,
)

__all__ = [
    "FaultScenario",
    "single_link_scenarios",
    "single_switch_scenarios",
    "sample_fault_scenarios",
    "ComponentNetwork",
    "DegradedNetwork",
    "VerificationReport",
    "degrade",
    "TimedSchedule",
    "RepairComparison",
    "ClusterPlacement",
    "DegradedSchedule",
    "evaluate_partition",
    "repair_schedule",
    "full_reschedule",
    "compare_repair_strategies",
    "schedule_degraded",
]
