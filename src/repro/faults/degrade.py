"""Degraded-network construction: the single ``degrade()`` entry point.

Applying a :class:`~repro.faults.model.FaultScenario` to a topology yields
a :class:`DegradedNetwork`: the surviving switches, the connected
components they form, and — per component — a compactly renumbered
:class:`~repro.topology.graph.Topology` with its reconfigured up*/down*
routing and table of equivalent distances (built lazily, through the
module-level distance cache).

Degradation never raises just because the network broke apart: a
partitioning fault produces several :class:`ComponentNetwork` objects
instead of one, and downstream consumers (degraded-mode scheduling, the
failure study) decide how to proceed per component.  What *does* raise is
a scenario that names elements the topology does not have — that is a
caller bug, not a fault condition.

:meth:`DegradedNetwork.verify` re-checks the two guarantees the paper
inherits from Autonet on the *surviving* network: up*/down* reconnects
every component (all legal distances finite) and remains deadlock-free
(acyclic channel dependency graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.distance.cache import cached_distance_table
from repro.distance.table import DistanceTable
from repro.faults.model import FaultScenario
from repro.routing.deadlock import is_deadlock_free
from repro.routing.updown import UpDownRouting
from repro.topology.graph import Link, Topology


@dataclass
class ComponentNetwork:
    """One connected component of a degraded network.

    ``switches`` holds the member switches under their *original* ids;
    ``topology`` is the induced subgraph renumbered compactly so the usual
    routing/distance/search machinery applies unchanged.  ``to_local`` /
    ``to_global`` translate between the two id spaces.
    """

    switches: Tuple[int, ...]
    topology: Topology
    _routing: Optional[UpDownRouting] = field(default=None, repr=False)
    _table: Optional[DistanceTable] = field(default=None, repr=False)

    @property
    def size(self) -> int:
        """Number of switches in the component."""
        return len(self.switches)

    @property
    def host_capacity(self) -> int:
        """Hosts (processor slots) the component still offers."""
        return self.topology.num_hosts

    @property
    def to_global(self) -> Tuple[int, ...]:
        """Local id ``k`` → original switch id ``to_global[k]``."""
        return self.switches

    @property
    def to_local(self) -> Dict[int, int]:
        """Original switch id → local id in :attr:`topology`."""
        return {s: i for i, s in enumerate(self.switches)}

    def routing(self) -> UpDownRouting:
        """Reconfigured up*/down* routing for the component (cached)."""
        if self._routing is None:
            self._routing = UpDownRouting(self.topology)
        return self._routing

    def distance_table(self) -> DistanceTable:
        """Table of equivalent distances for the component (cached)."""
        if self._table is None:
            self._table = cached_distance_table(self.routing())
        return self._table


@dataclass
class VerificationReport:
    """Outcome of :meth:`DegradedNetwork.verify` on one degraded network."""

    components_connected: bool
    deadlock_free: Optional[bool]

    @property
    def ok(self) -> bool:
        """True when every executed check passed."""
        return self.components_connected and self.deadlock_free in (None, True)


@dataclass
class DegradedNetwork:
    """A topology with a fault scenario applied.

    The central object of the fault subsystem: scenario + surviving
    switches + connected components.  ``connected`` means the survivors
    form a single component; ``full_machine`` additionally means no switch
    (hence no host) was lost, i.e. the old workload still fits exactly and
    old partitions remain directly comparable.
    """

    base: Topology
    scenario: FaultScenario
    surviving_switches: Tuple[int, ...]
    surviving_links: Tuple[Link, ...]
    components: Tuple[ComponentNetwork, ...]

    @property
    def connected(self) -> bool:
        """True when the surviving switches form one component."""
        return len(self.components) == 1

    @property
    def full_machine(self) -> bool:
        """True when the network is connected and no switch failed."""
        return self.connected and not self.scenario.switches

    @property
    def host_capacity(self) -> int:
        """Total surviving processor slots across all components."""
        return sum(c.host_capacity for c in self.components)

    def largest_component(self) -> ComponentNetwork:
        """The component with the most switches (ties by lowest member id)."""
        if not self.components:
            raise ValueError(
                f"scenario {self.scenario.label} left no surviving switches"
            )
        return max(self.components, key=lambda c: (c.size, -c.switches[0]))

    def routing(self) -> UpDownRouting:
        """Reconfigured routing of the whole surviving network.

        Only defined when the network is still connected; a partitioned
        network has one routing per component
        (:meth:`ComponentNetwork.routing`).
        """
        if not self.connected:
            raise ValueError(
                f"scenario {self.scenario.label} partitioned {self.base.name} "
                f"into {len(self.components)} components; use the per-"
                "component routings"
            )
        return self.components[0].routing()

    def distance_table(self) -> DistanceTable:
        """Distance table of the surviving network (connected case only)."""
        if not self.connected:
            raise ValueError(
                f"scenario {self.scenario.label} partitioned {self.base.name};"
                " use the per-component distance tables"
            )
        return self.components[0].distance_table()

    def verify(self, *, check_deadlock: bool = True) -> VerificationReport:
        """Re-check up*/down* guarantees on every surviving component.

        - every component's legal distances are finite (routing reconnects
          the component after reconfiguration);
        - with ``check_deadlock=True`` (CDG analysis, quadratic in
          component size) the reconfigured routing stays deadlock-free.
        """
        reconnects = True
        deadlock_free: Optional[bool] = True if check_deadlock else None
        for comp in self.components:
            if comp.size == 1:
                continue
            d = comp.routing().distances()
            if (d < 0).any():  # pragma: no cover - updown guarantees this
                reconnects = False
            if check_deadlock and not is_deadlock_free(comp.routing()):
                deadlock_free = False  # pragma: no cover - updown guarantee
        return VerificationReport(
            components_connected=reconnects, deadlock_free=deadlock_free
        )


def _components_of(switches: Tuple[int, ...],
                   links: Tuple[Link, ...]) -> List[Tuple[int, ...]]:
    """Connected components over ``switches`` (original ids), sorted by
    descending size then ascending lowest member id."""
    adj: Dict[int, List[int]] = {s: [] for s in switches}
    for u, v in links:
        adj[u].append(v)
        adj[v].append(u)
    seen = set()
    comps: List[Tuple[int, ...]] = []
    for start in switches:
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        members = []
        while stack:
            u = stack.pop()
            members.append(u)
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        comps.append(tuple(sorted(members)))
    comps.sort(key=lambda c: (-len(c), c[0]))
    return comps


def degrade(topology: Topology, scenario: FaultScenario) -> DegradedNetwork:
    """Apply a fault scenario to a topology: the subsystem's entry point.

    Validates the scenario (unknown links/switches raise ``ValueError``
    naming the missing element), removes the failed elements, and returns
    the surviving network decomposed into connected components.  A
    partitioning fault yields several components rather than raising.
    """
    scenario.validate(topology)
    dead_links = set(scenario.links)
    dead_switches = set(scenario.switches)
    survivors = tuple(
        s for s in range(topology.num_switches) if s not in dead_switches
    )
    links = tuple(
        l for l in topology.links
        if l not in dead_links
        and l[0] not in dead_switches
        and l[1] not in dead_switches
    )
    # Induce the components from the topology WITHOUT the failed links:
    # inducing from the base would silently restore a failed link whose
    # endpoints both survive in the same component.
    stripped = topology.without_links(scenario.links) if scenario.links \
        else topology
    components = tuple(
        ComponentNetwork(
            switches=members,
            topology=stripped.induced_subtopology(members),
        )
        for members in _components_of(survivors, links)
    )
    return DegradedNetwork(
        base=topology,
        scenario=scenario,
        surviving_switches=survivors,
        surviving_links=links,
        components=components,
    )


__all__ = [
    "ComponentNetwork",
    "VerificationReport",
    "DegradedNetwork",
    "degrade",
]
