"""Degraded-mode scheduling: repair, full reschedule, per-component plans.

Three escalation levels over a :class:`~repro.faults.degrade.DegradedNetwork`:

1. **Evaluate** — score the pre-fault partition under the surviving
   network's reconfigured distance table (how much did the old mapping
   degrade?).
2. **Repair** — warm-start Tabu from the old partition
   (``initial=``, one restart): an incremental fix that is guaranteed to
   end at ``F_G`` no worse than the degraded mapping's — hence, for fixed
   cluster sizes, at ``C_c`` no worse — at a fraction of the full search's
   cost.  This treats remapping as an incremental optimisation problem, in
   the spirit of the process-remapping literature.
3. **Full reschedule** — the paper's multi-start Tabu (warm first start,
   random remainder): the quality ceiling, at full search cost.

When the fault *partitions* the network — or kills switches so the old
mapping no longer fits — :func:`schedule_degraded` degrades gracefully
instead of raising: logical clusters are packed onto the surviving
components (first-fit decreasing), each component is scheduled
independently with its own reconfigured routing and distance table, and
clusters that no longer fit anywhere are reported as unplaced rather than
crashing the scheduler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mapping import Partition, Workload
from repro.core.quality import QualityEvaluator
from repro.faults.degrade import ComponentNetwork, DegradedNetwork
from repro.search.base import SearchResult, SimilarityObjective
from repro.search.tabu import TabuSearch
from repro.util.rng import derive_seed

_EPS = 1e-9


# --------------------------------------------------------------------- #
# connected-network paths: evaluate / repair / full reschedule
# --------------------------------------------------------------------- #

def evaluate_partition(net: DegradedNetwork,
                       partition: Partition) -> Dict[str, float]:
    """Score a pre-fault partition on the degraded (but intact) network.

    Requires ``net.full_machine`` — with lost switches or a partitioned
    network the old partition is no longer directly comparable (its
    clusters may reference dead switches or span components).
    """
    if not net.full_machine:
        raise ValueError(
            f"scenario {net.scenario.label}: old partitions are only "
            "evaluable on a connected full machine; use schedule_degraded"
        )
    evaluator = QualityEvaluator(net.distance_table())
    f = evaluator.similarity(partition)
    d = evaluator.dissimilarity(partition)
    return {"F_G": f, "D_G": d, "C_c": d / f}


@dataclass
class TimedSchedule:
    """A search outcome plus the wall time it took."""

    partition: Partition
    f_g: float
    c_c: float
    seconds: float
    search: SearchResult


def _timed_tabu(net: DegradedNetwork, workload: Workload, *,
                seed: int, restarts: int,
                initial: Optional[Partition]) -> TimedSchedule:
    comp = net.components[0]
    objective = SimilarityObjective(
        comp.distance_table(),
        workload.switch_quota(comp.topology),
        num_switches=comp.topology.num_switches,
    )
    search = TabuSearch(restarts=restarts)
    t0 = time.perf_counter()
    result = search.run(objective, seed=seed, initial=initial)
    seconds = time.perf_counter() - t0
    evaluator = objective.evaluator
    f = evaluator.similarity(result.best_partition)
    d = evaluator.dissimilarity(result.best_partition)
    return TimedSchedule(
        partition=result.best_partition,
        f_g=f,
        c_c=d / f,
        seconds=seconds,
        search=result,
    )


def repair_schedule(net: DegradedNetwork, workload: Workload,
                    old_partition: Partition, *, seed: int = 1,
                    restarts: int = 1) -> TimedSchedule:
    """Warm-start Tabu repair of a pre-fault mapping (full machine only).

    With the default single restart the search begins at the old partition
    and tracks the best value seen — so the repaired ``F_G`` never exceeds
    the degraded mapping's, and (fixed sizes) the repaired ``C_c`` never
    falls below it.
    """
    if not net.full_machine:
        raise ValueError(
            f"scenario {net.scenario.label}: warm-start repair needs a "
            "connected full machine; use schedule_degraded"
        )
    return _timed_tabu(net, workload, seed=seed, restarts=restarts,
                       initial=old_partition)


def full_reschedule(net: DegradedNetwork, workload: Workload, *,
                    old_partition: Optional[Partition] = None, seed: int = 1,
                    restarts: int = 10) -> TimedSchedule:
    """The paper's multi-start Tabu on the degraded network.

    When ``old_partition`` is given the first start is warm (preserving the
    repair guarantee) and the remaining starts explore from random seeds.
    """
    if not net.full_machine:
        raise ValueError(
            f"scenario {net.scenario.label}: full rescheduling of the "
            "original workload needs a connected full machine; use "
            "schedule_degraded"
        )
    return _timed_tabu(net, workload, seed=seed, restarts=restarts,
                       initial=old_partition)


@dataclass
class RepairComparison:
    """Repair-vs-full-reschedule tradeoff on one survivable scenario."""

    degraded_c_c: float
    repaired: TimedSchedule
    rescheduled: TimedSchedule

    @property
    def repair_gap(self) -> float:
        """Quality left on the table by repairing instead of rescheduling."""
        return self.rescheduled.c_c - self.repaired.c_c

    @property
    def speedup(self) -> float:
        """Wall-time ratio full-reschedule / repair (> 1 favours repair)."""
        if self.repaired.seconds <= 0:
            return float("inf")
        return self.rescheduled.seconds / self.repaired.seconds


def compare_repair_strategies(
    net: DegradedNetwork, workload: Workload, old_partition: Partition, *,
    seed: int = 1, repair_restarts: int = 1, full_restarts: int = 10,
) -> RepairComparison:
    """Evaluate, repair and fully reschedule one survivable scenario.

    Returns the degraded ``C_c`` of the old mapping plus both timed
    recovery schedules, so study drivers can report the quality/time
    tradeoff.  Both recoveries warm-start from the old partition, hence
    both are guaranteed to reach ``C_c`` at least the degraded value.
    """
    degraded = evaluate_partition(net, old_partition)["C_c"]
    repaired = repair_schedule(net, workload, old_partition, seed=seed,
                               restarts=repair_restarts)
    rescheduled = full_reschedule(net, workload, old_partition=old_partition,
                                  seed=seed, restarts=full_restarts)
    return RepairComparison(
        degraded_c_c=degraded,
        repaired=repaired,
        rescheduled=rescheduled,
    )


# --------------------------------------------------------------------- #
# graceful degradation: per-component scheduling
# --------------------------------------------------------------------- #

@dataclass
class ClusterPlacement:
    """Where one logical cluster landed in a degraded-mode schedule."""

    cluster_index: int
    cluster_name: str
    component_index: Optional[int]     # None = unplaced
    switches: Tuple[int, ...] = ()     # original switch ids

    @property
    def placed(self) -> bool:
        """True when the cluster was assigned to a surviving component."""
        return self.component_index is not None


@dataclass
class DegradedSchedule:
    """A per-component schedule produced under faults — never an exception.

    ``placements`` covers every cluster of the workload, placed or not;
    ``component_c_c`` holds each component's clustering coefficient where
    it is defined (a component needs at least one intracluster *and* one
    intercluster switch pair).
    """

    scenario_label: str
    connected: bool
    placements: List[ClusterPlacement]
    component_c_c: Dict[int, Optional[float]] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def placed(self) -> List[ClusterPlacement]:
        """Placements that landed on a component."""
        return [p for p in self.placements if p.placed]

    @property
    def unplaced(self) -> List[ClusterPlacement]:
        """Clusters the surviving capacity could not accommodate."""
        return [p for p in self.placements if not p.placed]

    @property
    def all_placed(self) -> bool:
        """True when every cluster found a home."""
        return not self.unplaced

    def assignment(self) -> Dict[int, Tuple[int, ...]]:
        """cluster index → original switch ids (placed clusters only)."""
        return {p.cluster_index: p.switches for p in self.placed}

    def to_partition(self, num_switches: int) -> Optional[Partition]:
        """Global :class:`Partition` over the original switch ids.

        Only defined when every cluster is placed (cluster labels must stay
        consecutive); returns ``None`` otherwise.
        """
        if not self.all_placed:
            return None
        labels = np.full(num_switches, -1, dtype=np.int64)
        for p in self.placements:
            for s in p.switches:
                labels[s] = p.cluster_index
        return Partition(labels)


def _component_c_c(evaluator: QualityEvaluator,
                   partition: Partition) -> Optional[float]:
    """``C_c`` of a component-local partition, or ``None`` if undefined."""
    try:
        return evaluator.clustering_coefficient(partition)
    except ValueError:
        return None


def _warm_start_for(comp: ComponentNetwork, placed: Sequence[int],
                    quotas: Sequence[int],
                    old_partition: Optional[Partition]) -> Optional[Partition]:
    """Old-mapping restriction to ``comp``, if it matches the placed quotas.

    Reuses the pre-fault placement as the Tabu warm start whenever every
    placed cluster kept exactly its quota of switches inside the component;
    otherwise returns ``None`` (cold start).
    """
    if old_partition is None:
        return None
    to_local = comp.to_local
    labels = np.full(comp.size, -1, dtype=np.int64)
    for local_idx, (ci, quota) in enumerate(zip(placed, quotas)):
        members = [
            s for s in range(old_partition.num_switches)
            if old_partition.labels[s] == ci and s in to_local
        ]
        if len(members) != quota:
            return None
        for s in members:
            labels[to_local[s]] = local_idx
    return Partition(labels)


def schedule_degraded(
    net: DegradedNetwork, workload: Workload, *,
    old_partition: Optional[Partition] = None, seed: int = 1,
    restarts: int = 4,
) -> DegradedSchedule:
    """Graceful degraded-mode scheduling: always returns a schedule.

    Logical clusters are packed onto the surviving components by first-fit
    decreasing (largest cluster first, fullest-capacity component first);
    each component then runs its own Tabu search over its reconfigured
    distance table, warm-started from the old mapping where it still
    matches.  Clusters that fit no component are reported as unplaced —
    a partitioning or capacity-destroying fault degrades the schedule, it
    does not raise.
    """
    t0 = time.perf_counter()
    quotas = workload.switch_quota(net.base)
    placements: List[ClusterPlacement] = [
        ClusterPlacement(ci, c.name, None)
        for ci, c in enumerate(workload.clusters)
    ]

    # First-fit decreasing bin packing of cluster switch quotas onto
    # component capacities (deterministic tie-breaks on indices).
    order = sorted(range(len(quotas)), key=lambda ci: (-quotas[ci], ci))
    remaining = [comp.size for comp in net.components]
    per_component: Dict[int, List[int]] = {}
    for ci in order:
        for k in range(len(net.components)):
            if quotas[ci] <= remaining[k]:
                remaining[k] -= quotas[ci]
                per_component.setdefault(k, []).append(ci)
                break

    component_c_c: Dict[int, Optional[float]] = {}
    for k, members in sorted(per_component.items()):
        comp = net.components[k]
        placed = sorted(members)
        placed_quotas = [quotas[ci] for ci in placed]
        local = _schedule_component(
            comp, placed, placed_quotas, old_partition,
            seed=derive_seed(seed, "component", k), restarts=restarts,
        )
        evaluator = QualityEvaluator(comp.distance_table()) \
            if comp.size >= 2 else None
        component_c_c[k] = (
            _component_c_c(evaluator, local) if evaluator is not None else None
        )
        # Translate the local partition back to original switch ids.
        for local_idx, ci in enumerate(placed):
            switches = tuple(
                comp.to_global[s]
                for s in range(comp.size)
                if local.labels[s] == local_idx
            )
            placements[ci] = ClusterPlacement(
                ci, workload.clusters[ci].name, k, switches
            )

    return DegradedSchedule(
        scenario_label=net.scenario.label,
        connected=net.connected,
        placements=placements,
        component_c_c=component_c_c,
        seconds=time.perf_counter() - t0,
    )


def _schedule_component(comp: ComponentNetwork, placed: Sequence[int],
                        quotas: Sequence[int],
                        old_partition: Optional[Partition], *,
                        seed: int, restarts: int) -> Partition:
    """Tabu-schedule the placed clusters inside one component (local ids)."""
    pairs = sum(q * (q - 1) // 2 for q in quotas)
    if pairs == 0 or comp.size < 2:
        # Degenerate objective (all placed clusters are single-switch, or a
        # single-switch component): any placement is optimal; fill switches
        # in id order for determinism.
        labels = np.full(comp.size, -1, dtype=np.int64)
        pos = 0
        for local_idx, quota in enumerate(quotas):
            for s in range(pos, pos + quota):
                labels[s] = local_idx
            pos += quota
        return Partition(labels)
    objective = SimilarityObjective(
        comp.distance_table(), quotas, num_switches=comp.size
    )
    initial = _warm_start_for(comp, placed, quotas, old_partition)
    result = TabuSearch(restarts=restarts).run(
        objective, seed=seed, initial=initial
    )
    return result.best_partition


__all__ = [
    "TimedSchedule",
    "RepairComparison",
    "ClusterPlacement",
    "DegradedSchedule",
    "evaluate_partition",
    "repair_schedule",
    "full_reschedule",
    "compare_repair_strategies",
    "schedule_degraded",
]
