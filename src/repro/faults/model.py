"""The seedable fault model: scenarios of permanent link/switch failures.

A :class:`FaultScenario` is an immutable, order-normalized description of a
set of *permanent* faults — failed inter-switch links and failed switches
(a failed switch takes its hosts and every incident link down with it).
Scenarios are values: hashable, comparable, serializable (see
:mod:`repro.serialize`) and independent of any particular topology until
:meth:`FaultScenario.validate`/:meth:`FaultScenario.apply` binds them to
one.

Scenario generators cover the study axes:

- :func:`single_link_scenarios` / :func:`single_switch_scenarios` —
  exhaustive single-fault enumerations;
- :func:`sample_fault_scenarios` — seeded uniform samples of ``k``-fault
  scenarios (multi-fault, optionally mixing link and switch failures),
  deterministic for a given ``(topology, k, count, seed)``.

Every generator returns scenarios in a deterministic order, so study
drivers built on them stay bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

from repro.topology.graph import Link, Topology, _normalize_link
from repro.util.rng import SeedLike, as_rng


def _normalize_links(links: Iterable[Link]) -> Tuple[Link, ...]:
    out = {_normalize_link(int(u), int(v)) for u, v in links}
    return tuple(sorted(out))


def _normalize_switches(switches: Iterable[int]) -> Tuple[int, ...]:
    return tuple(sorted({int(s) for s in switches}))


@dataclass(frozen=True)
class FaultScenario:
    """An immutable set of permanent link and switch failures.

    Parameters
    ----------
    links:
        Failed inter-switch links as ``(u, v)`` pairs (order-normalized,
        deduplicated).
    switches:
        Failed switches; each takes its hosts and incident links down.
    name:
        Optional label for reports; :attr:`label` derives one when empty.
    """

    links: Tuple[Link, ...] = ()
    switches: Tuple[int, ...] = ()
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "links", _normalize_links(self.links))
        object.__setattr__(self, "switches", _normalize_switches(self.switches))
        if self.switches and self.switches[0] < 0:
            raise ValueError(f"switch ids must be >= 0, got {self.switches}")

    @property
    def num_faults(self) -> int:
        """Total number of injected faults (links plus switches)."""
        return len(self.links) + len(self.switches)

    @property
    def label(self) -> str:
        """Compact human-readable identity, e.g. ``L0-3+L2-7+S5``."""
        if self.name:
            return self.name
        parts = [f"L{u}-{v}" for u, v in self.links]
        parts += [f"S{s}" for s in self.switches]
        return "+".join(parts) if parts else "none"

    def validate(self, topology: Topology) -> None:
        """Check every fault names an element of ``topology``; raise otherwise.

        The error message names the first missing element, mirroring
        :meth:`repro.topology.graph.Topology.without_link`.
        """
        for u, v in self.links:
            if not topology.has_link(u, v):
                raise ValueError(
                    f"fault scenario {self.label}: ({u},{v}) is not a link "
                    f"of {topology.name}"
                )
        for s in self.switches:
            if not (0 <= s < topology.num_switches):
                raise ValueError(
                    f"fault scenario {self.label}: switch {s} is not a switch "
                    f"of {topology.name} (valid ids: "
                    f"0..{topology.num_switches - 1})"
                )
        if len(self.switches) >= topology.num_switches:
            raise ValueError(
                f"fault scenario {self.label} fails all "
                f"{topology.num_switches} switches of {topology.name}"
            )

    def apply(self, topology: Topology) -> Topology:
        """The same-id degraded topology: faulty links removed, faulty
        switches isolated.

        The switch count (and hence host numbering) is preserved — failed
        switches simply lose every incident link.  Use
        :func:`repro.faults.degrade.degrade` for the full surviving-network
        view (components, routing, capacity).
        """
        self.validate(topology)
        dead = set(self.links)
        dead_sw = set(self.switches)
        remaining = [
            l for l in topology.links
            if l not in dead and l[0] not in dead_sw and l[1] not in dead_sw
        ]
        return Topology(
            topology.num_switches,
            remaining,
            hosts_per_switch=topology.hosts_per_switch,
            switch_ports=topology.switch_ports,
            name=f"{topology.name}-fault-{self.label}",
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (see :mod:`repro.serialize`)."""
        return {
            "links": [list(l) for l in self.links],
            "switches": list(self.switches),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultScenario":
        """Inverse of :meth:`to_dict`."""
        return cls(
            links=tuple(tuple(l) for l in d.get("links", ())),
            switches=tuple(d.get("switches", ())),
            name=d.get("name", ""),
        )


def single_link_scenarios(topology: Topology) -> List[FaultScenario]:
    """One scenario per link of ``topology``, in link order."""
    return [FaultScenario(links=(l,)) for l in topology.links]


def single_switch_scenarios(topology: Topology) -> List[FaultScenario]:
    """One scenario per switch of ``topology``, in id order."""
    return [
        FaultScenario(switches=(s,)) for s in range(topology.num_switches)
    ]


def sample_fault_scenarios(
    topology: Topology,
    *,
    num_faults: int,
    count: int,
    seed: SeedLike = 0,
    include_switches: bool = False,
) -> List[FaultScenario]:
    """``count`` distinct uniformly sampled ``num_faults``-fault scenarios.

    Each scenario draws ``num_faults`` distinct elements without
    replacement from the topology's links (and, with
    ``include_switches=True``, its switches — at most
    ``num_switches - 1`` of them per scenario so at least one switch
    survives).  Sampling is deterministic for a given seed; duplicate draws
    are rejected, so the result holds ``min(count, #distinct scenarios)``
    scenarios in draw order.
    """
    if num_faults < 1:
        raise ValueError(f"num_faults must be >= 1, got {num_faults}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    elements: List[Tuple[str, Any]] = [("link", l) for l in topology.links]
    if include_switches:
        elements += [("switch", s) for s in range(topology.num_switches)]
    if num_faults > len(elements):
        raise ValueError(
            f"cannot draw {num_faults} faults from {len(elements)} candidate "
            f"elements of {topology.name}"
        )
    rng = as_rng(seed)
    seen = set()
    out: List[FaultScenario] = []
    max_switch_faults = topology.num_switches - 1
    attempts = 0
    # Rejection sampling with a generous attempt budget: duplicates and
    # all-switches-dead draws are rare for the study sizes used here.
    while len(out) < count and attempts < 50 * max(count, 1):
        attempts += 1
        idx = rng.choice(len(elements), size=num_faults, replace=False)
        links = tuple(elements[i][1] for i in sorted(idx)
                      if elements[i][0] == "link")
        switches = tuple(elements[i][1] for i in sorted(idx)
                         if elements[i][0] == "switch")
        if len(switches) > max_switch_faults:
            continue
        scenario = FaultScenario(links=links, switches=switches)
        if scenario in seen:
            continue
        seen.add(scenario)
        out.append(scenario)
    return out


__all__ = [
    "FaultScenario",
    "single_link_scenarios",
    "single_switch_scenarios",
    "sample_fault_scenarios",
]
