"""Tests for the command-line interface."""

import json

import pytest

from repro import serialize
from repro.cli import main
from repro.core.mapping import Partition
from repro.obs.schema import validate_trace_file
from repro.topology.graph import Topology


class TestTopologyCommand:
    def test_describe(self, capsys):
        assert main(["topology", "--switches", "12", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "switches:        12" in out
        assert "diameter:" in out

    def test_save_and_load(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        main(["topology", "--switches", "12", "--seed", "1",
              "--save", str(path)])
        loaded = serialize.load(path)
        assert isinstance(loaded, Topology)
        assert loaded.num_switches == 12

    def test_four_rings(self, capsys):
        main(["topology", "--kind", "four-rings"])
        assert "switches:        24" in capsys.readouterr().out

    def test_mesh(self, capsys):
        main(["topology", "--kind", "mesh", "--switches", "16"])
        assert "switches:        16" in capsys.readouterr().out

    def test_load_wrong_payload(self, tmp_path):
        path = tmp_path / "p.json"
        serialize.save(Partition([0, 0]), path)
        with pytest.raises(SystemExit):
            main(["topology", "--load", str(path)])


class TestScheduleCommand:
    def test_schedule_prints_scores(self, capsys):
        assert main(["schedule", "--switches", "12", "--seed", "1",
                     "--clusters", "3", "--randoms", "2"]) == 0
        out = capsys.readouterr().out
        assert "F_G=" in out and "C_c=" in out
        assert "random-0" in out

    def test_schedule_saves_partition(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        main(["schedule", "--switches", "12", "--seed", "1",
              "--clusters", "3", "--save", str(path)])
        loaded = serialize.load(path)
        assert isinstance(loaded, Partition)
        assert loaded.sizes() == [4, 4, 4]

    def test_uneven_clusters_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--switches", "16", "--clusters", "3"])


class TestSimulateCommand:
    def test_simulate_prints_sweep(self, capsys):
        assert main([
            "simulate", "--switches", "8", "--seed", "1", "--clusters", "2",
            "--randoms", "1", "--points", "2", "--measure", "300",
            "--warmup", "100", "--max-rate", "0.01",
        ]) == 0
        out = capsys.readouterr().out
        assert "scheduled" in out and "S1 acc" in out and "S2 lat" in out

    def test_engine_batch_flag_matches_fast(self, capsys):
        """--engine batch runs the sweep batched, same numbers out."""
        argv = [
            "simulate", "--switches", "8", "--seed", "1", "--clusters", "2",
            "--randoms", "0", "--points", "3", "--measure", "300",
            "--warmup", "100", "--max-rate", "0.01",
        ]
        assert main(argv + ["--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert main(argv + ["--engine", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert batch_out == fast_out
        assert "S3 acc" in batch_out

    def test_engine_vector_flag_runs_the_sweep(self, capsys):
        """--engine vector completes the same sweep; numbers may differ
        from the bit-identical lineage (statistical contract, DESIGN.md
        §6g) but the output shape must not."""
        argv = [
            "simulate", "--switches", "8", "--seed", "1", "--clusters", "2",
            "--randoms", "0", "--points", "3", "--measure", "300",
            "--warmup", "100", "--max-rate", "0.01",
        ]
        assert main(argv + ["--engine", "vector"]) == 0
        first = capsys.readouterr().out
        assert "S1 acc" in first and "S3 acc" in first
        # Deterministic per seed: the same invocation reprints itself.
        assert main(argv + ["--engine", "vector"]) == 0
        assert capsys.readouterr().out == first


class TestFiguresCommand:
    def test_fig2_and_fig4(self, capsys):
        assert main(["figures", "--fig", "2", "--fig", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 4" in out
        assert "Figure 3" not in out

    def test_fig1(self, capsys):
        assert main(["figures", "--fig", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestMetricsCommand:
    def test_metrics_output(self, capsys):
        assert main(["metrics", "--switches", "12", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "bisection width:" in out
        assert "path diversity:" in out
        assert "edge connectivity: 3" in out

    def test_metrics_four_rings(self, capsys):
        main(["metrics", "--kind", "four-rings"])
        out = capsys.readouterr().out
        assert "switches / links:  24" in out


class TestTraceFlag:
    def test_trace_writes_valid_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["--trace", str(trace), "schedule", "--switches", "12",
                     "--seed", "1", "--clusters", "3", "--randoms", "1"]) == 0
        counts = validate_trace_file(trace)
        assert counts["manifest"] == 1
        assert counts["metrics"] == 1
        assert counts["span"] >= 1

    def test_trace_flag_accepted_after_subcommand(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["schedule", "--switches", "12", "--seed", "1",
                     "--clusters", "3", "--randoms", "1",
                     "--trace", str(trace)]) == 0
        assert validate_trace_file(trace)["manifest"] == 1

    def test_manifest_records_command_and_seed(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        main(["--trace", str(trace), "schedule", "--switches", "12",
              "--seed", "5", "--clusters", "3", "--randoms", "1"])
        manifest = json.loads(trace.read_text().splitlines()[0])
        assert manifest["command"] == "schedule"
        assert manifest["seed"] == 5

    def test_trace_does_not_change_results(self, tmp_path, capsys):
        args = ["schedule", "--switches", "12", "--seed", "1",
                "--clusters", "3", "--randoms", "2"]
        main(args)
        plain = capsys.readouterr().out
        main(["--trace", str(tmp_path / "t.jsonl")] + args)
        assert capsys.readouterr().out == plain


class TestReportCommand:
    def test_report_renders_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(["--trace", str(trace), "simulate", "--switches", "8",
              "--seed", "1", "--clusters", "2", "--randoms", "1",
              "--points", "2", "--measure", "300", "--warmup", "100",
              "--max-rate", "0.01"])
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "run manifest" in out
        assert "per-phase time breakdown" in out
        assert "slowest spans" in out

    def test_report_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "absent.jsonl")])


class TestFailuresCommand:
    def test_failures_output(self, capsys):
        assert main(["failures", "--switches", "12", "--seed", "1",
                     "--clusters", "3", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "failure injection" in out
        assert "survivable failures: 3/3" in out


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestServiceCommands:
    """``repro submit`` / ``repro status`` against a live loopback daemon."""

    @pytest.fixture()
    def service(self):
        from repro.service import ServiceConfig, running_service

        with running_service(ServiceConfig(port=0, workers=1,
                                           batch_window=0.01)) as svc:
            yield svc

    def test_submit_prints_scores_and_partition(self, service, capsys):
        host, port = service.address
        assert main(["submit", "--host", host, "--port", str(port),
                     "--switches", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "F_G=" in out and "cluster 0:" in out
        assert "served:   computed" in out

    def test_second_submit_is_served_from_the_store(self, service, capsys):
        host, port = service.address
        args = ["submit", "--host", host, "--port", str(port),
                "--switches", "8", "--seed", "3"]
        main(args)
        capsys.readouterr()
        main(args)
        assert "served:   store" in capsys.readouterr().out

    def test_submit_json_emits_the_canonical_payload(self, service, capsys):
        from repro.service import ScheduleRequest, execute_batch
        from repro.topology.irregular import random_irregular_topology

        host, port = service.address
        assert main(["submit", "--host", host, "--port", str(port),
                     "--switches", "8", "--seed", "4", "--json"]) == 0
        printed = json.loads(capsys.readouterr().out)
        # The CLI seeds the generated topology and the search identically.
        topo = random_irregular_topology(8, seed=4)
        req = ScheduleRequest.build(topo, clusters=4, seed=4)
        assert printed == execute_batch([req.to_dict()])[0]

    def test_submit_request_file_round_trip(self, service, tmp_path, capsys):
        from repro import serialize
        from repro.service import ScheduleRequest
        from repro.topology.irregular import random_irregular_topology

        topo = random_irregular_topology(8, seed=6)
        req = ScheduleRequest.build(topo, clusters=2, seed=6)
        path = tmp_path / "req.json"
        serialize.save(req, path)
        host, port = service.address
        out_path = tmp_path / "resp.json"
        assert main(["submit", "--host", host, "--port", str(port),
                     "--request", str(path), "--save", str(out_path)]) == 0
        saved = json.loads(out_path.read_text())
        assert saved["fingerprint"] == req.fingerprint()

    def test_status_renders_counters(self, service, capsys):
        host, port = service.address
        main(["submit", "--host", host, "--port", str(port),
              "--switches", "8", "--seed", "5"])
        capsys.readouterr()
        assert main(["status", "--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "requests:" in out and "store:" in out and "pool:" in out

    def test_status_json_is_a_valid_service_status(self, service, capsys):
        from repro import serialize

        host, port = service.address
        assert main(["status", "--host", host, "--port", str(port),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert serialize.from_dict(payload).queue_capacity == 64

    def test_submit_without_a_service_fails_cleanly(self, capsys):
        with pytest.raises(SystemExit, match="no service"):
            main(["submit", "--host", "127.0.0.1", "--port", "1",
                  "--switches", "8"])

    def test_bad_request_file_fails_cleanly(self, service, tmp_path):
        host, port = service.address
        path = tmp_path / "bad.json"
        path.write_text('{"type": "schedule_request"}')
        with pytest.raises(SystemExit):
            main(["submit", "--host", host, "--port", str(port),
                  "--request", str(path)])
