"""Tests for distance-table diagnostics."""

import numpy as np
import pytest

from repro.distance.metrics import (
    distance_hop_correlation,
    quadratic_mean,
    triangle_violations,
)
from repro.distance.table import DistanceTable, hop_distance_table


class TestTriangleViolations:
    def test_metric_table_has_none(self):
        vals = np.array([[0, 1, 2], [1, 0, 1], [2, 1, 0]], dtype=float)
        assert triangle_violations(DistanceTable(vals)) == 0

    def test_known_violation_counted(self):
        # T_02 = 5 > T_01 + T_12 = 2: ordered triples (0,1,2) and (2,1,0).
        vals = np.array([[0, 1, 5], [1, 0, 1], [5, 1, 0]], dtype=float)
        assert triangle_violations(DistanceTable(vals)) == 2

    def test_paper_table_is_not_metric(self, table16):
        # The paper stresses the equivalent-distance table violates the
        # triangle inequality on real topologies.
        assert triangle_violations(table16) > 0

    def test_raw_hop_table_is_metric(self, topo16):
        # Unrestricted hop distances satisfy the triangle inequality.
        from repro.distance.table import DistanceTable

        raw = DistanceTable(topo16.hop_distances().astype(float), kind="hops")
        assert triangle_violations(raw) == 0

    def test_updown_legal_distances_not_metric(self, routing16):
        # Legal up*/down* distances violate the triangle inequality: the
        # concatenation of two legal paths (up-down + up-down) is not a
        # legal path, so d(i,k) can exceed d(i,j) + d(j,k).  This is part
        # of why the paper cannot use Euclidean clustering.
        h = hop_distance_table(routing16)
        assert triangle_violations(h) > 0


class TestQuadraticMean:
    def test_closed_form(self):
        vals = np.array([[0, 3], [3, 0]], dtype=float)
        assert quadratic_mean(DistanceTable(vals)) == pytest.approx(3.0)

    def test_positive_for_real_table(self, table16):
        assert quadratic_mean(table16) > 0


class TestDistanceHopCorrelation:
    def test_identical_tables(self, table16):
        assert distance_hop_correlation(table16, table16) == pytest.approx(1.0)

    def test_high_but_imperfect(self, routing16, table16):
        h = hop_distance_table(routing16)
        r = distance_hop_correlation(table16, h)
        assert 0.5 < r < 1.0, (
            "resistance should track hops closely but not exactly "
            "(parallel-path credit)"
        )

    def test_size_mismatch(self, table16):
        small = DistanceTable(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            distance_hop_correlation(table16, small)
