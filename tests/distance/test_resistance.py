"""Tests for equivalent-resistance computation against closed forms."""

import numpy as np
import pytest

from repro.distance.resistance import equivalent_resistance, resistance_matrix


class TestEquivalentResistance:
    def test_single_link(self):
        assert equivalent_resistance([(0, 1)], 0, 1) == pytest.approx(1.0)

    def test_series(self):
        links = [(0, 1), (1, 2), (2, 3)]
        assert equivalent_resistance(links, 0, 3) == pytest.approx(3.0)

    def test_parallel(self):
        # Two disjoint 2-hop paths between 0 and 3: 2 || 2 = 1.
        links = [(0, 1), (1, 3), (0, 2), (2, 3)]
        assert equivalent_resistance(links, 0, 3) == pytest.approx(1.0)

    def test_triangle(self):
        # Triangle: direct edge in parallel with two in series: 1 || 2 = 2/3.
        links = [(0, 1), (1, 2), (0, 2)]
        assert equivalent_resistance(links, 0, 2) == pytest.approx(2.0 / 3.0)

    def test_wheatstone_balanced(self):
        # Balanced bridge: the bridge edge carries no current -> R = 1.
        links = [(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)]
        assert equivalent_resistance(links, 0, 3) == pytest.approx(1.0)

    def test_complete_graph_k4(self):
        # K_n between adjacent nodes: R = 2/n.
        links = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        assert equivalent_resistance(links, 0, 1) == pytest.approx(0.5)

    def test_same_node_zero(self):
        assert equivalent_resistance([(0, 1)], 1, 1) == 0.0

    def test_disconnected_raises(self):
        with pytest.raises(ValueError, match="not connected"):
            equivalent_resistance([(0, 1), (2, 3)], 0, 3)

    def test_arbitrary_labels(self):
        links = [(10, 20), (20, 30)]
        assert equivalent_resistance(links, 10, 30) == pytest.approx(2.0)

    def test_other_component_ignored(self):
        links = [(0, 1), (5, 6), (6, 7)]
        assert equivalent_resistance(links, 0, 1) == pytest.approx(1.0)

    def test_bounded_by_shortest_path(self):
        # Resistance never exceeds the length of any single path.
        rng = np.random.default_rng(0)
        for _ in range(10):
            n = 8
            links = {(0, 1), (1, 2), (2, 3)}  # guaranteed 0-3 path, length 3
            for _ in range(8):
                u, v = rng.integers(0, n, size=2)
                if u != v:
                    links.add((min(u, v), max(u, v)))
            r = equivalent_resistance(sorted(links), 0, 3)
            assert 0 < r <= 3.0 + 1e-9


class TestResistanceMatrix:
    def test_matches_pairwise(self):
        links = [(0, 1), (1, 2), (0, 2), (2, 3)]
        m = resistance_matrix(4, links)
        for i in range(4):
            for j in range(4):
                if i == j:
                    assert m[i, j] == 0
                else:
                    assert m[i, j] == pytest.approx(
                        equivalent_resistance(links, i, j)
                    )

    def test_symmetric(self):
        links = [(0, 1), (1, 2), (2, 3), (3, 0)]
        m = resistance_matrix(4, links)
        assert np.allclose(m, m.T)

    def test_disconnected_inf(self):
        m = resistance_matrix(4, [(0, 1), (2, 3)])
        assert np.isinf(m[0, 2]) and np.isinf(m[1, 3])
        assert m[0, 1] == pytest.approx(1.0)

    def test_resistance_is_metric(self):
        # Unlike the paper's per-pair-subnetwork table, whole-graph
        # effective resistance IS a metric — a nice contrast check.
        links = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]
        m = resistance_matrix(5, links)
        for i in range(5):
            for j in range(5):
                for k in range(5):
                    assert m[i, k] <= m[i, j] + m[j, k] + 1e-9
