"""Tests for the table of equivalent distances."""

import numpy as np
import pytest

from repro.distance.table import DistanceTable, build_distance_table, hop_distance_table
from repro.routing.minimal import MinimalRouting
from repro.routing.updown import UpDownRouting
from repro.topology.designed import binary_tree_topology, ring_topology
from repro.topology.graph import Topology


class TestDistanceTable:
    def test_valid_table(self):
        t = DistanceTable(np.array([[0.0, 2.0], [2.0, 0.0]]))
        assert t.num_nodes == 2
        assert t[0, 1] == 2.0

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ValueError, match="diagonal"):
            DistanceTable(np.array([[1.0, 2.0], [2.0, 0.0]]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DistanceTable(np.array([[0.0, -2.0], [-2.0, 0.0]]))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            DistanceTable(np.zeros((2, 3)))

    def test_values_readonly(self):
        t = DistanceTable(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            t.values[0, 1] = 5.0

    def test_squared(self):
        t = DistanceTable(np.array([[0.0, 3.0], [3.0, 0.0]]))
        assert t.squared()[0, 1] == 9.0

    def test_quadratic_mean_squared(self):
        vals = np.array([[0, 1, 2], [1, 0, 3], [2, 3, 0]], dtype=float)
        t = DistanceTable(vals)
        assert t.quadratic_mean_squared() == pytest.approx((1 + 4 + 9) / 3)

    def test_roundtrip_dict(self):
        t = DistanceTable(np.array([[0.0, 1.5], [1.5, 0.0]]), kind="hops",
                          name="x")
        t2 = DistanceTable.from_dict(t.to_dict())
        assert np.allclose(t.values, t2.values)
        assert t2.kind == "hops" and t2.name == "x"


class TestBuildDistanceTable:
    def test_symmetric_nonneg(self, table16):
        assert table16.is_symmetric()
        assert (table16.values >= 0).all()
        assert (np.diag(table16.values) == 0).all()

    def test_upper_bounded_by_legal_distance(self, routing16, table16):
        # Parallel shortest paths can only lower the resistance.
        legal = routing16.distances().astype(float)
        assert (table16.values <= legal + 1e-9).all()

    def test_adjacent_nodes_distance_one(self, topo16, table16):
        # Neighbours share exactly one link and a 1-hop shortest path, so
        # the subnetwork is a single unit resistor: T must be exactly 1.
        d = topo16.hop_distances()
        for i in range(16):
            for j in range(16):
                if d[i, j] == 1:
                    assert table16.values[i, j] == pytest.approx(1.0)

    def test_tree_table_equals_hops(self):
        # On a tree there is a unique path: resistance == hop count.
        topo = binary_tree_topology(3)
        r = UpDownRouting(topo, root=0)
        t = build_distance_table(r)
        assert np.allclose(t.values, topo.hop_distances())

    def test_parallel_paths_reduce_distance(self):
        # 4-cycle with minimal routing: antipodal nodes have two disjoint
        # 2-hop paths -> resistance 1 < 2 hops.
        topo = ring_topology(4)
        r = MinimalRouting(topo)
        t = build_distance_table(r)
        assert t.values[0, 2] == pytest.approx(1.0)
        assert t.values[1, 3] == pytest.approx(1.0)

    def test_routing_affects_table(self):
        # On an odd ring, up*/down* forbids one direction for some pairs,
        # increasing their equivalent distance over minimal routing.
        topo = ring_topology(5)
        t_min = build_distance_table(MinimalRouting(topo))
        t_ud = build_distance_table(UpDownRouting(topo, root=0))
        assert (t_ud.values >= t_min.values - 1e-9).all()
        assert (t_ud.values > t_min.values + 1e-9).any()

    def test_kind_and_name(self, table16):
        assert table16.kind == "equivalent"
        assert "updown" in table16.name


class TestHopDistanceTable:
    def test_matches_routing_distances(self, routing16):
        t = hop_distance_table(routing16)
        assert np.allclose(t.values, routing16.distances())
        assert t.kind == "hops"

    def test_hops_bound_equivalent(self, routing16, table16):
        h = hop_distance_table(routing16)
        assert (table16.values <= h.values + 1e-9).all()
