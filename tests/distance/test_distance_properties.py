"""Property-based tests for the distance model (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.distance.resistance import equivalent_resistance
from repro.distance.table import build_distance_table
from repro.routing.updown import UpDownRouting
from repro.topology.irregular import random_irregular_topology


@st.composite
def resistor_networks(draw):
    """Connected random resistor networks built on a guaranteed spanning path."""
    n = draw(st.integers(3, 9))
    links = {(i, i + 1) for i in range(n - 1)}
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=12,
    ))
    for u, v in extra:
        if u != v:
            links.add((min(u, v), max(u, v)))
    return n, sorted(links)


@given(resistor_networks())
@settings(max_examples=50, deadline=None)
def test_resistance_positive_and_symmetric(net):
    n, links = net
    r01 = equivalent_resistance(links, 0, n - 1)
    r10 = equivalent_resistance(links, n - 1, 0)
    assert r01 > 0
    assert abs(r01 - r10) < 1e-9


@given(resistor_networks())
@settings(max_examples=50, deadline=None)
def test_rayleigh_monotonicity(net):
    """Adding a link never increases effective resistance (Rayleigh)."""
    n, links = net
    base = equivalent_resistance(links, 0, n - 1)
    extra = (0, n - 1)
    if extra in links:
        return
    augmented = links + [extra]
    assert equivalent_resistance(augmented, 0, n - 1) <= base + 1e-9


@given(resistor_networks())
@settings(max_examples=50, deadline=None)
def test_resistance_bounded_by_path_length(net):
    n, links = net
    # The spanning path 0-1-...-n-1 exists, so R <= n-1.
    r = equivalent_resistance(links, 0, n - 1)
    assert r <= (n - 1) + 1e-9


@given(st.integers(0, 2000))
@settings(max_examples=15, deadline=None)
def test_distance_table_invariants_random_topology(seed):
    topo = random_irregular_topology(10, seed=seed)
    routing = UpDownRouting(topo)
    table = build_distance_table(routing)
    legal = routing.distances().astype(float)
    assert table.is_symmetric()
    assert (np.diag(table.values) == 0).all()
    off = table.values + np.eye(10)
    assert (off > 0).all()
    # 2/degree <= T_ij <= legal distance for i != j (the lower bound is the
    # resistance of deg parallel 2-hop paths, the densest possible support
    # in a simple graph).
    mask = ~np.eye(10, dtype=bool)
    min_bound = 2.0 / 3.0  # generator degree is 3
    assert (table.values[mask] >= min_bound - 1e-9).all()
    assert (table.values[mask] <= legal[mask] + 1e-9).all()


@given(st.integers(0, 2000), st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_table_equivariant_under_relabeling(seed, perm_seed):
    """Relabeling switches permutes the distance table accordingly."""
    topo = random_irregular_topology(8, seed=seed)
    rng = np.random.default_rng(perm_seed)
    perm = rng.permutation(8)
    relabeled = topo.relabeled(perm.tolist())

    # Use the same root under relabeling for a fair comparison.
    root = 0
    t1 = build_distance_table(UpDownRouting(topo, root=root)).values
    t2 = build_distance_table(
        UpDownRouting(relabeled, root=int(perm[root]))
    ).values
    # NOTE: up*/down* tie-breaking uses switch ids, so exact equivariance
    # holds only when the permutation preserves the (level, id) order.
    # We therefore check the weaker, always-true property: the multiset of
    # distances from the root row is preserved.
    assert np.allclose(
        np.sort(t1[root]), np.sort(t2[int(perm[root])]), atol=1e-9
    )
