"""Tests for the distance/routing-table cache."""

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.distance.cache import (
    TableCache,
    cached_distance_table,
    cached_routing_table,
    configure_cache,
    routing_cache_key,
    topology_fingerprint,
)
from repro.distance.table import build_distance_table
from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.topology.graph import Topology
from repro.topology.irregular import random_irregular_topology


def _ring(n=6, name="ring"):
    return Topology(n, [(i, (i + 1) % n) for i in range(n)], name=name)


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self):
        # Identity and name do not matter, only structure.
        assert topology_fingerprint(_ring(name="a")) == topology_fingerprint(
            _ring(name="b")
        )

    def test_removing_link_changes_fingerprint(self, topo8):
        u, v = topo8.links[0]
        assert topology_fingerprint(topo8) != topology_fingerprint(
            topo8.without_link(u, v)
        )

    def test_adding_link_changes_fingerprint(self):
        base = _ring()
        chord = Topology(6, list(base.links) + [(0, 3)])
        assert topology_fingerprint(base) != topology_fingerprint(chord)

    def test_host_count_changes_fingerprint(self):
        a = Topology(6, [(i, (i + 1) % 6) for i in range(6)], hosts_per_switch=2)
        b = Topology(6, [(i, (i + 1) % 6) for i in range(6)], hosts_per_switch=4)
        assert topology_fingerprint(a) != topology_fingerprint(b)

    def test_different_sizes_differ(self):
        assert topology_fingerprint(_ring(6)) != topology_fingerprint(_ring(8))


class TestRoutingCacheKey:
    def test_distance_kinds_get_distinct_keys(self, routing8):
        assert routing_cache_key(routing8, "distance:equivalent") != \
            routing_cache_key(routing8, "distance:hops")

    def test_root_is_part_of_the_key(self, topo8):
        a = UpDownRouting(topo8, root=0)
        b = UpDownRouting(topo8, root=1)
        assert routing_cache_key(a, "x") != routing_cache_key(b, "x")


class TestTableCache:
    def test_hit_and_miss_accounting(self):
        cache = TableCache(maxsize=4)
        builds = []
        for _ in range(3):
            cache.get_or_build("k", lambda: builds.append(1) or "v")
        st = cache.stats()
        assert len(builds) == 1
        assert (st.hits, st.misses, st.evictions) == (2, 1, 0)
        assert st.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction(self):
        cache = TableCache(maxsize=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 1)   # refresh a — b is now LRU
        cache.get_or_build("c", lambda: 3)   # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats().evictions == 1
        assert len(cache) == 2

    def test_clear_resets_everything(self):
        cache = TableCache(maxsize=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        st = cache.stats()
        assert (st.hits, st.misses, st.size) == (0, 0, 0)

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            TableCache(maxsize=0)


class TestRegistryCounters:
    """Each lookup ticks cache.<name>.{hits,misses,evictions} counters."""

    def test_hits_misses_and_evictions_counted(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            cache = TableCache(maxsize=2, name="test")
            cache.get_or_build("a", lambda: 1)   # miss
            cache.get_or_build("a", lambda: 1)   # hit
            cache.get_or_build("b", lambda: 2)   # miss
            cache.get_or_build("c", lambda: 3)   # miss + eviction of a
        counters = reg.snapshot()["counters"]
        assert counters["cache.test.hits"] == 1.0
        assert counters["cache.test.misses"] == 3.0
        assert counters["cache.test.evictions"] == 1.0
        # Registry agrees with the cache's own accounting.
        st = cache.stats()
        assert (st.hits, st.misses, st.evictions) == (1, 3, 1)

    def test_default_cache_name_is_tables(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            TableCache(maxsize=2).get_or_build("k", lambda: 1)
        assert reg.snapshot()["counters"]["cache.tables.misses"] == 1.0

    def test_no_registry_means_no_error(self):
        cache = TableCache(maxsize=2)
        assert cache.get_or_build("k", lambda: 41 + 1) == 42
        assert cache.stats().misses == 1


class TestCachedBuilders:
    def test_distance_table_built_once(self, routing8):
        cache = TableCache()
        t1 = cached_distance_table(routing8, cache=cache)
        t2 = cached_distance_table(routing8, cache=cache)
        assert t1 is t2
        assert cache.stats().misses == 1 and cache.stats().hits == 1

    def test_cached_value_matches_direct_build(self, routing8):
        cached = cached_distance_table(routing8, cache=TableCache())
        direct = build_distance_table(routing8)
        n = direct.num_nodes
        assert all(
            cached[i, j] == direct[i, j] for i in range(n) for j in range(n)
        )

    def test_kinds_are_separate_entries(self, routing8):
        cache = TableCache()
        eq = cached_distance_table(routing8, kind="equivalent", cache=cache)
        hops = cached_distance_table(routing8, kind="hops", cache=cache)
        assert eq is not hops
        assert cache.stats().misses == 2

    def test_unknown_kind_rejected(self, routing8):
        with pytest.raises(ValueError):
            cached_distance_table(routing8, kind="euclid", cache=TableCache())

    def test_topology_mutation_misses(self, topo8):
        cache = TableCache()
        cached_distance_table(UpDownRouting(topo8), cache=cache)
        u, v = topo8.links[0]
        degraded = topo8.without_link(u, v)
        cached_distance_table(UpDownRouting(degraded), cache=cache)
        assert cache.stats().misses == 2 and cache.stats().hits == 0

    def test_equal_topologies_share_entry(self):
        cache = TableCache()
        r1 = UpDownRouting(random_irregular_topology(8, seed=7))
        r2 = UpDownRouting(random_irregular_topology(8, seed=7))
        assert r1.topology is not r2.topology
        t1 = cached_distance_table(r1, cache=cache)
        t2 = cached_distance_table(r2, cache=cache)
        assert t1 is t2

    def test_routing_table_cached(self, routing8):
        cache = TableCache()
        rt1 = cached_routing_table(routing8, cache=cache)
        rt2 = cached_routing_table(routing8, cache=cache)
        assert rt1 is rt2
        assert isinstance(rt1, RoutingTable)


class TestModuleCacheToggle:
    def test_disabled_cache_builds_fresh(self, routing8):
        configure_cache(enabled=False)
        try:
            t1 = cached_distance_table(routing8)
            t2 = cached_distance_table(routing8)
            assert t1 is not t2
        finally:
            configure_cache(enabled=True)

    def test_enabled_cache_shares(self, routing8):
        configure_cache(enabled=True, clear=True)
        assert cached_distance_table(routing8) is cached_distance_table(routing8)
