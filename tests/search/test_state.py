"""Tests for the incremental PartitionState."""

import numpy as np
import pytest

from repro.core.mapping import Partition, random_partition
from repro.core.quality import QualityEvaluator
from repro.search.base import SimilarityObjective
from repro.search.state import PartitionState


@pytest.fixture
def objective(table16):
    return SimilarityObjective(table16, [4, 4, 4, 4])


class TestState:
    def test_value_matches_evaluator(self, table16, objective):
        state = objective.random_state(seed=0)
        ev = QualityEvaluator(table16)
        assert state.value() == pytest.approx(ev.similarity(state.partition()))

    def test_singleton_clusters_rejected(self, table16):
        ev = QualityEvaluator(table16)
        with pytest.raises(ValueError, match="no intracluster pairs"):
            PartitionState(ev, Partition(list(range(16))))

    def test_swap_delta_matches_apply(self, objective):
        state = objective.random_state(seed=1)
        v0 = state.value()
        pairs = list(state.candidate_swaps())
        a, b = pairs[5]
        delta = state.swap_delta(a, b)
        state.apply_swap(a, b)
        assert state.value() == pytest.approx(v0 + delta)

    def test_swap_is_involution(self, objective):
        state = objective.random_state(seed=2)
        key0 = state.partition().canonical_key()
        v0 = state.value()
        a, b = next(iter(state.candidate_swaps()))
        state.apply_swap(a, b)
        state.apply_swap(a, b)
        assert state.partition().canonical_key() == key0
        assert state.value() == pytest.approx(v0)

    def test_candidate_swaps_cross_cluster_only(self, objective):
        state = objective.random_state(seed=3)
        for a, b in state.candidate_swaps():
            assert state.labels[a] != state.labels[b]

    def test_candidate_count(self, objective):
        state = objective.random_state(seed=4)
        count = sum(1 for _ in state.candidate_swaps())
        # C(16,2) - 4*C(4,2) = 120 - 24 = 96
        assert count == 96

    def test_best_swap_is_minimal(self, objective):
        state = objective.random_state(seed=5)
        pair, delta = state.best_swap()
        assert pair is not None
        deltas = [state.swap_delta(a, b) for a, b in state.candidate_swaps()]
        assert delta == pytest.approx(min(deltas))

    def test_best_swap_respects_forbidden(self, objective):
        state = objective.random_state(seed=6)
        pair, _ = state.best_swap()
        forbidden = {pair}
        pair2, _ = state.best_swap(forbidden, aspiration_below=float("-inf"))
        assert pair2 != pair

    def test_aspiration_overrides_tabu(self, objective):
        state = objective.random_state(seed=7)
        pair, delta = state.best_swap()
        assert delta < 0  # random start: improving swaps exist
        # With aspiration below current+delta+margin the tabu is overridden.
        target = state.value() + delta + 1e-9
        pair2, delta2 = state.best_swap({pair}, aspiration_below=target)
        assert pair2 == pair

    def test_copy_independent(self, objective):
        state = objective.random_state(seed=8)
        clone = state.copy()
        before = clone.partition().canonical_key()
        a, b = next(iter(state.candidate_swaps()))
        state.apply_swap(a, b)
        # Clone unaffected by the mutation of the original.
        assert clone.partition().canonical_key() == before
        fresh = objective.state_from(clone.partition())
        assert clone.value() == pytest.approx(fresh.value())

    def test_recompute_idempotent(self, objective):
        state = objective.random_state(seed=9)
        for pair in list(state.candidate_swaps())[:10]:
            state.apply_swap(*pair)
        v = state.value()
        state.recompute()
        assert state.value() == pytest.approx(v)


class TestObjectiveValidation:
    def test_bad_sizes(self, table16):
        with pytest.raises(ValueError):
            SimilarityObjective(table16, [0, 4])

    def test_overflow(self, table16):
        with pytest.raises(ValueError):
            SimilarityObjective(table16, [10, 10])

    def test_table_mismatch(self, table16):
        with pytest.raises(ValueError):
            SimilarityObjective(table16, [4, 4], num_switches=20)

    def test_state_from_wrong_sizes(self, table16):
        obj = SimilarityObjective(table16, [4, 4, 4, 4])
        wrong = random_partition([8, 8], 16, seed=0)
        with pytest.raises(ValueError, match="sizes"):
            obj.state_from(wrong)

    def test_value_function(self, table16):
        obj = SimilarityObjective(table16, [8, 8])
        p = random_partition([8, 8], 16, seed=1)
        ev = QualityEvaluator(table16)
        assert obj.value(p) == pytest.approx(ev.similarity(p))
