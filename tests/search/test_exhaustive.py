"""Tests for exhaustive enumeration / branch-and-bound."""

import numpy as np
import pytest

from repro.core.mapping import random_partition
from repro.search.base import SimilarityObjective
from repro.search.exhaustive import (
    ExhaustiveSearch,
    count_partitions,
    enumerate_partitions,
)


class TestCountPartitions:
    def test_known_counts(self):
        # 4 nodes into 2+2: C(4,2)/2 = 3.
        assert count_partitions([2, 2], 4) == 3
        # 6 into 3+3: C(6,3)/2 = 10.
        assert count_partitions([3, 3], 6) == 10
        # 6 into 2+2+2: 15*6/6... C(6,2)*C(4,2)/3! = 15.
        assert count_partitions([2, 2, 2], 6) == 15
        # 8 into 4+4: C(8,4)/2 = 35.
        assert count_partitions([4, 4], 8) == 35

    def test_unequal_sizes_no_division(self):
        # 5 into 2+3: C(5,2) = 10 (no label symmetry).
        assert count_partitions([2, 3], 5) == 10

    def test_partial_machine(self):
        # choose 2 of 4 for a single cluster: C(4,2) = 6.
        assert count_partitions([2], 4) == 6

    def test_paper_16_4x4(self):
        # 16 into four 4s: 16!/(4!^4 * 4!) = 2627625.
        assert count_partitions([4, 4, 4, 4], 16) == 2_627_625


class TestEnumerate:
    @pytest.mark.parametrize("sizes,n", [
        ([2, 2], 4),
        ([3, 3], 6),
        ([2, 2, 2], 6),
        ([2, 3], 5),
        ([2], 4),
        ([2, 2], 6),
    ])
    def test_enumeration_complete_and_unique(self, sizes, n):
        parts = list(enumerate_partitions(sizes, n))
        keys = {p.canonical_key() for p in parts}
        assert len(parts) == len(keys) == count_partitions(sizes, n)

    def test_all_have_correct_sizes(self):
        for p in enumerate_partitions([2, 3], 6):
            assert p.sizes() == [2, 3]


class TestExhaustiveSearch:
    def test_finds_planted_optimum(self):
        # Two tight blocks: optimum must be the planted partition.
        t = np.full((6, 6), 10.0)
        for block in ((0, 1, 2), (3, 4, 5)):
            for i in block:
                for j in block:
                    t[i, j] = 1.0
        np.fill_diagonal(t, 0.0)
        obj = SimilarityObjective(t, [3, 3])
        res = ExhaustiveSearch().run(obj)
        assert res.optimal is True
        assert set(res.best_partition.clusters()) == {(0, 1, 2), (3, 4, 5)}

    def test_matches_brute_force_min(self, table8):
        obj = SimilarityObjective(table8, [4, 4])
        res = ExhaustiveSearch().run(obj)
        brute = min(
            obj.value(p) for p in enumerate_partitions([4, 4], 8)
        )
        assert res.best_value == pytest.approx(brute)

    def test_max_nodes_guard(self, table16):
        obj = SimilarityObjective(table16, [4, 4, 4, 4])
        with pytest.raises(RuntimeError, match="max_nodes"):
            ExhaustiveSearch(max_nodes=100).run(obj)

    def test_initial_incumbent_accepted(self, table8):
        obj = SimilarityObjective(table8, [4, 4])
        seedp = random_partition([4, 4], 8, seed=1)
        res = ExhaustiveSearch().run(obj, initial=seedp)
        assert res.best_value <= obj.value(seedp) + 1e-12

    def test_partial_machine(self, table8):
        obj = SimilarityObjective(table8, [2, 2])
        res = ExhaustiveSearch().run(obj)
        assert res.best_partition.sizes() == [2, 2]
        assert res.optimal is True
        brute = min(obj.value(p) for p in enumerate_partitions([2, 2], 8))
        assert res.best_value == pytest.approx(brute)
