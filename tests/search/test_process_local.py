"""Tests for the process-level mapping optimizer."""

import numpy as np
import pytest

from repro.core.mapping import (
    LogicalCluster,
    Workload,
    partition_to_mapping,
    random_partition,
)
from repro.core.quality import weighted_mapping_cost
from repro.search.process_local import (
    ProcessMappingOptimizer,
    default_weights,
    random_process_mapping,
)


@pytest.fixture
def uneven_workload():
    """Cluster sizes deliberately NOT multiples of 4 hosts/switch."""
    return Workload([
        LogicalCluster("a", 10, comm_weight=2.0),
        LogicalCluster("b", 22),
        LogicalCluster("c", 32, comm_weight=0.5),
    ])


class TestDefaultWeights:
    def test_structure(self):
        w = Workload([LogicalCluster("a", 2, comm_weight=2.0),
                      LogicalCluster("b", 2)])
        m = default_weights(w)
        assert m.shape == (4, 4)
        assert m[0, 1] == 4.0          # intra-a: 2*2
        assert m[2, 3] == 1.0          # intra-b
        assert m[0, 2] == 0.0          # cross-cluster
        assert (np.diag(m) == 0).all()
        assert np.allclose(m, m.T)

    def test_matches_weighted_cost(self, topo16, table16, workload16):
        # weighted_mapping_cost's implicit W equals default_weights.
        part = random_partition([4] * 4, 16, seed=1)
        mapping = partition_to_mapping(part, workload16, topo16)
        explicit = weighted_mapping_cost(
            table16, mapping, weights=default_weights(workload16)
        )
        implicit = weighted_mapping_cost(table16, mapping)
        assert explicit == pytest.approx(implicit)


class TestRandomProcessMapping:
    def test_valid_and_no_purity_required(self, topo16, uneven_workload):
        m = random_process_mapping(uneven_workload, topo16, seed=0)
        m.validate()
        # Switch purity generally violated (that's the point).
        with pytest.raises(ValueError):
            m.induced_partition()

    def test_overflow_rejected(self, topo16):
        w = Workload([LogicalCluster("big", 65)])
        with pytest.raises(ValueError):
            random_process_mapping(w, topo16, seed=0)

    def test_reproducible(self, topo16, uneven_workload):
        a = random_process_mapping(uneven_workload, topo16, seed=3)
        b = random_process_mapping(uneven_workload, topo16, seed=3)
        assert a.host_of == b.host_of


class TestOptimizer:
    def test_descent_improves(self, topo16, table16, uneven_workload):
        opt = ProcessMappingOptimizer(table16, uneven_workload, topo16)
        res = opt.optimize(seed=0, restarts=2)
        assert res.cost < res.initial_cost
        assert res.improvement > 0

    def test_cost_consistency(self, topo16, table16, uneven_workload):
        opt = ProcessMappingOptimizer(table16, uneven_workload, topo16)
        res = opt.optimize(seed=1, restarts=2)
        assert opt.cost_of(res.mapping) == pytest.approx(res.cost)
        # And against the public weighted_mapping_cost.
        assert weighted_mapping_cost(
            table16, res.mapping, weights=opt.weights
        ) == pytest.approx(res.cost)

    def test_result_mapping_valid(self, topo16, table16, uneven_workload):
        opt = ProcessMappingOptimizer(table16, uneven_workload, topo16)
        res = opt.optimize(seed=2)
        res.mapping.validate()

    def test_matches_switch_level_on_paper_case(self, topo16, table16,
                                                workload16, scheduler16):
        """With the paper's assumptions, process-level descent should get
        close to the Tabu partition objective (same optimum space)."""
        opt = ProcessMappingOptimizer(table16, workload16, topo16)
        res = opt.optimize(seed=0, restarts=5)
        tabu = scheduler16.schedule(workload16, seed=0)
        tabu_cost = weighted_mapping_cost(table16, tabu.mapping)
        assert res.cost <= 1.3 * tabu_cost

    def test_warm_start_never_worse(self, topo16, table16, workload16):
        part = random_partition([4] * 4, 16, seed=5)
        warm = partition_to_mapping(part, workload16, topo16)
        opt = ProcessMappingOptimizer(table16, workload16, topo16)
        res = opt.optimize(initial=warm, seed=0, restarts=1)
        assert res.cost <= opt.cost_of(warm) + 1e-9

    def test_partial_machine_uses_free_hosts(self, topo16, table16):
        w = Workload([LogicalCluster("small", 6)])
        opt = ProcessMappingOptimizer(table16, w, topo16)
        res = opt.optimize(seed=0, restarts=3)
        # 6 heavily-communicating processes should end up on few switches.
        switches = {
            topo16.host_switch(h) for h in res.mapping.host_of.values()
        }
        assert len(switches) <= 3

    def test_validation(self, topo16, table16, workload16):
        with pytest.raises(ValueError, match="weights"):
            ProcessMappingOptimizer(table16, workload16, topo16,
                                    weights=np.ones((3, 3)))
        bad = np.ones((64, 64))
        bad[0, 1] = 5.0
        with pytest.raises(ValueError, match="symmetric"):
            ProcessMappingOptimizer(table16, workload16, topo16, weights=bad)
        with pytest.raises(ValueError, match="restarts"):
            ProcessMappingOptimizer(table16, workload16, topo16).optimize(
                seed=0, restarts=0
            )

    def test_deterministic(self, topo16, table16, uneven_workload):
        opt = ProcessMappingOptimizer(table16, uneven_workload, topo16)
        a = opt.optimize(seed=7, restarts=2)
        b = opt.optimize(seed=7, restarts=2)
        assert a.cost == b.cost
        assert a.mapping.host_of == b.mapping.host_of
