"""Tests for the paper's Tabu search."""

import pytest

from repro.core.mapping import Partition, random_partition
from repro.search.base import SimilarityObjective
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.tabu import TabuSearch


@pytest.fixture
def objective16(table16):
    return SimilarityObjective(table16, [4, 4, 4, 4])


@pytest.fixture
def objective8(table8):
    return SimilarityObjective(table8, [4, 4])


class TestParameters:
    @pytest.mark.parametrize("kwargs", [
        {"restarts": 0},
        {"max_iterations": 0},
        {"local_min_repeats": 0},
        {"tenure": -1},
    ])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            TabuSearch(**kwargs)


class TestSearchBehaviour:
    def test_finds_exhaustive_optimum_small(self, objective8):
        # The paper: on small networks Tabu matches exhaustive search.
        exact = ExhaustiveSearch().run(objective8)
        tabu = TabuSearch().run(objective8, seed=0)
        assert tabu.best_value == pytest.approx(exact.best_value)

    def test_multiple_seeds_consistent_on_16(self, objective16):
        vals = [TabuSearch().run(objective16, seed=s).best_value
                for s in range(3)]
        spread = max(vals) - min(vals)
        assert spread < 0.05, "multi-start Tabu should be stable across seeds"

    def test_beats_random_baseline(self, objective16):
        tabu = TabuSearch().run(objective16, seed=1)
        randoms = [
            objective16.value(random_partition([4] * 4, 16, seed=s))
            for s in range(30)
        ]
        assert tabu.best_value < min(randoms)

    def test_trace_structure(self, objective16):
        res = TabuSearch(restarts=4).run(objective16, seed=2)
        assert len(res.restart_indices) == 4
        assert res.restart_indices[0] == 0
        assert sorted(res.restart_indices) == res.restart_indices
        # Each restart begins at a (high) random value.
        for idx in res.restart_indices:
            assert res.trace[idx] > res.best_value

    def test_best_value_matches_trace_min(self, objective16):
        res = TabuSearch().run(objective16, seed=3)
        assert res.best_value == pytest.approx(min(res.trace))

    def test_best_partition_value_consistent(self, objective16):
        res = TabuSearch().run(objective16, seed=4)
        assert objective16.value(res.best_partition) == pytest.approx(
            res.best_value
        )

    def test_deterministic(self, objective16):
        a = TabuSearch().run(objective16, seed=5)
        b = TabuSearch().run(objective16, seed=5)
        assert a.trace == b.trace
        assert a.best_partition == b.best_partition

    def test_initial_partition_used(self, objective16):
        init = random_partition([4] * 4, 16, seed=9)
        res = TabuSearch(restarts=1, max_iterations=1).run(
            objective16, seed=0, initial=init
        )
        assert res.trace[0] == pytest.approx(objective16.value(init))

    def test_iteration_cap_respected(self, objective16):
        res = TabuSearch(restarts=2, max_iterations=5).run(objective16, seed=6)
        # trace holds the initial value plus <= 5 moves per restart
        assert len(res.trace) <= 2 * 6

    def test_uphill_moves_present(self, objective16):
        # The Tabu escape mechanism must produce non-monotone segments.
        res = TabuSearch(restarts=2, max_iterations=20).run(objective16, seed=7)
        diffs = [b - a for a, b in zip(res.trace, res.trace[1:])]
        assert any(d > 0 for d in diffs), "no uphill escape observed"

    def test_meta_fields(self, objective16):
        res = TabuSearch(tenure=7).run(objective16, seed=8)
        assert res.method == "tabu"
        assert res.meta["tenure"] == 7
        assert res.evaluations > 0

    def test_zero_tenure_allowed(self, objective16):
        res = TabuSearch(tenure=0, restarts=2).run(objective16, seed=9)
        assert res.best_value > 0


class TestLocalMinimumCounting:
    """Regression tests for the local-minimum stop rule.

    The stop rule (paper: "the search must end when the same local minimum
    is visited three times") must count visits only at genuine local minima
    of the *unrestricted* swap neighbourhood.  An earlier version judged by
    the tabu-filtered best delta, so a state whose improving escape was
    merely tabu-forbidden was miscounted as a local-minimum visit, ending
    seeds early.
    """

    @pytest.mark.parametrize("seed", range(4))
    def test_counted_states_are_genuine_local_minima(self, objective16, seed):
        res = TabuSearch().run(objective16, seed=seed)
        keys = res.meta["local_min_keys"]
        assert keys, "tabu on 16 switches must reach some local minimum"
        for key in keys:
            part = Partition.from_clusters(key, 16)
            state = objective16.state_from(part)
            _pair, delta, free_delta = state.best_swaps(set(), float("-inf"))
            assert free_delta >= -1e-9, (
                f"counted state has an unrestricted improving swap "
                f"(free_delta={free_delta}); the visit was tabu-masked, "
                f"not a local minimum"
            )
            assert delta == free_delta  # no forbidden moves ⇒ same optimum

    def test_visit_total_matches_key_counts(self, objective16):
        res = TabuSearch().run(objective16, seed=1)
        assert res.meta["local_min_visits"] >= len(res.meta["local_min_keys"])

    def test_tabu_masked_descent_not_counted(self, objective8):
        # With an enormous tenure every inverse move stays forbidden, so
        # tabu-masked states abound; visits must still only happen at
        # unrestricted minima.
        res = TabuSearch(restarts=2, tenure=50, max_iterations=15).run(
            objective8, seed=3
        )
        for key in res.meta["local_min_keys"]:
            state = objective8.state_from(Partition.from_clusters(key, 8))
            _pair, _delta, free_delta = state.best_swaps(set(), float("-inf"))
            assert free_delta >= -1e-9


class TestPaperOptimalityClaim:
    def test_tabu_matches_exhaustive_on_16_switches(self, objective16):
        """Section 4.2 verbatim: 'for small size networks (up to 16
        switches) the minimum obtained by this method was the same value
        F(P_0) that the one obtained with an exhaustive search.'

        The raw 4x4x4x4 space has 2,627,625 partitions; warm-starting the
        branch-and-bound with the Tabu incumbent prunes it to ~35k nodes,
        making the exact check cheap enough for the regular suite.
        """
        tabu = TabuSearch().run(objective16, seed=0)
        exact = ExhaustiveSearch(max_nodes=5_000_000).run(
            objective16, initial=tabu.best_partition
        )
        assert exact.optimal is True
        assert tabu.best_value == pytest.approx(exact.best_value)
