"""Property-based tests across search methods (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.search.annealing import SimulatedAnnealing
from repro.search.base import SimilarityObjective
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.tabu import TabuSearch


@st.composite
def small_objectives(draw):
    n = draw(st.sampled_from([4, 6, 8]))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    t = rng.uniform(0.5, 4.0, size=(n, n))
    t = 0.5 * (t + t.T)
    np.fill_diagonal(t, 0.0)
    sizes = [n // 2, n // 2]
    return SimilarityObjective(t, sizes)


@given(small_objectives(), st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_tabu_matches_exhaustive_on_small_instances(obj, seed):
    """The paper's claim, as a property: Tabu == exhaustive for small N."""
    exact = ExhaustiveSearch().run(obj)
    tabu = TabuSearch().run(obj, seed=seed)
    assert tabu.best_value <= exact.best_value * 1.0 + 1e-9


@given(small_objectives(), st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_search_results_always_feasible(obj, seed):
    for method in (TabuSearch(restarts=3),
                   SimulatedAnnealing(iterations=200)):
        res = method.run(obj, seed=seed)
        assert res.best_partition.sizes() == obj.sizes
        assert np.isfinite(res.best_value)
        assert obj.value(res.best_partition) <= res.best_value + 1e-9


@given(small_objectives(), st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_tabu_best_never_worse_than_first_sample(obj, seed):
    res = TabuSearch(restarts=2).run(obj, seed=seed)
    assert res.best_value <= res.trace[0] + 1e-12
    assert res.best_value <= min(res.trace) + 1e-12
