"""Parallel multi-start runs must be bit-identical to serial runs.

The contract (see :mod:`repro.parallel`): restart RNG streams are derived
before execution and results merge in job order, so the process pool is
unobservable in the output.  Hypothesis drives the seed and the pool width;
every :class:`~repro.search.base.SearchMethod` is checked.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.annealing import SimulatedAnnealing
from repro.search.base import SimilarityObjective
from repro.search.genetic import GeneticAlgorithm
from repro.search.gsa import GeneticSimulatedAnnealing
from repro.search.random_search import RandomSearch
from repro.search.tabu import TabuSearch

# Small configurations: the property is structural, not about search
# quality, so a few iterations per method keep the suite fast.
METHOD_FACTORIES = {
    "tabu": lambda workers: TabuSearch(
        restarts=3, max_iterations=6, workers=workers
    ),
    "annealing": lambda workers: SimulatedAnnealing(
        iterations=120, restarts=2, workers=workers
    ),
    "genetic": lambda workers: GeneticAlgorithm(
        population=8, generations=4, restarts=2, workers=workers
    ),
    "gsa": lambda workers: GeneticSimulatedAnnealing(
        population=6, generations=4, restarts=2, workers=workers
    ),
    "random": lambda workers: RandomSearch(
        samples=15, restarts=2, workers=workers
    ),
}


@pytest.fixture(scope="module")
def objective8(table8):
    return SimilarityObjective(table8, [4, 4])


def assert_results_identical(serial, parallel):
    assert parallel.best_value == serial.best_value
    assert (parallel.best_partition.canonical_key()
            == serial.best_partition.canonical_key())
    assert parallel.trace == serial.trace
    assert parallel.restart_indices == serial.restart_indices
    assert parallel.iterations == serial.iterations
    assert parallel.evaluations == serial.evaluations
    assert parallel.meta == serial.meta


@pytest.mark.parametrize("method", sorted(METHOD_FACTORIES))
@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       workers=st.integers(min_value=2, max_value=4))
def test_parallel_bit_identical_to_serial(method, objective8, seed, workers):
    serial = METHOD_FACTORIES[method](1).run(objective8, seed=seed)
    parallel = METHOD_FACTORIES[method](workers).run(objective8, seed=seed)
    assert_results_identical(serial, parallel)


@pytest.mark.parametrize("method", sorted(METHOD_FACTORIES))
def test_rerun_is_deterministic(method, objective8):
    a = METHOD_FACTORIES[method](2).run(objective8, seed=11)
    b = METHOD_FACTORIES[method](2).run(objective8, seed=11)
    assert_results_identical(a, b)


def test_restart_traces_concatenate_in_seed_order(objective8):
    """The merged trace is the serial concatenation of per-seed traces."""
    res = TabuSearch(restarts=3, max_iterations=6, workers=3).run(
        objective8, seed=5
    )
    assert len(res.restart_indices) == 3
    assert res.restart_indices[0] == 0
    assert res.restart_indices == sorted(res.restart_indices)
    assert res.best_value == pytest.approx(min(res.trace))
