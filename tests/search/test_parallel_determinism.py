"""Parallel multi-start runs must be bit-identical to serial runs.

The contract (see :mod:`repro.parallel`): restart RNG streams are derived
before execution and results merge in job order, so the process pool is
unobservable in the output.  Hypothesis drives the seed and the pool width;
every :class:`~repro.search.base.SearchMethod` is checked.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.sinks import MemorySink
from repro.obs.trace import Tracer, use_tracer
from repro.search.annealing import SimulatedAnnealing
from repro.search.base import SimilarityObjective
from repro.search.genetic import GeneticAlgorithm
from repro.search.gsa import GeneticSimulatedAnnealing
from repro.search.random_search import RandomSearch
from repro.search.tabu import TabuSearch

# Small configurations: the property is structural, not about search
# quality, so a few iterations per method keep the suite fast.
METHOD_FACTORIES = {
    "tabu": lambda workers: TabuSearch(
        restarts=3, max_iterations=6, workers=workers
    ),
    "annealing": lambda workers: SimulatedAnnealing(
        iterations=120, restarts=2, workers=workers
    ),
    "genetic": lambda workers: GeneticAlgorithm(
        population=8, generations=4, restarts=2, workers=workers
    ),
    "gsa": lambda workers: GeneticSimulatedAnnealing(
        population=6, generations=4, restarts=2, workers=workers
    ),
    "random": lambda workers: RandomSearch(
        samples=15, restarts=2, workers=workers
    ),
}


@pytest.fixture(scope="module")
def objective8(table8):
    return SimilarityObjective(table8, [4, 4])


def assert_results_identical(serial, parallel):
    assert parallel.best_value == serial.best_value
    assert (parallel.best_partition.canonical_key()
            == serial.best_partition.canonical_key())
    assert parallel.trace == serial.trace
    assert parallel.restart_indices == serial.restart_indices
    assert parallel.iterations == serial.iterations
    assert parallel.evaluations == serial.evaluations
    assert parallel.meta == serial.meta


@pytest.mark.parametrize("method", sorted(METHOD_FACTORIES))
@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       workers=st.integers(min_value=2, max_value=4))
def test_parallel_bit_identical_to_serial(method, objective8, seed, workers):
    serial = METHOD_FACTORIES[method](1).run(objective8, seed=seed)
    parallel = METHOD_FACTORIES[method](workers).run(objective8, seed=seed)
    assert_results_identical(serial, parallel)


@pytest.mark.parametrize("method", sorted(METHOD_FACTORIES))
def test_rerun_is_deterministic(method, objective8):
    a = METHOD_FACTORIES[method](2).run(objective8, seed=11)
    b = METHOD_FACTORIES[method](2).run(objective8, seed=11)
    assert_results_identical(a, b)


class TestTracingInertness:
    """Telemetry on vs off must leave every search result bit-identical."""

    @pytest.mark.parametrize("method", sorted(METHOD_FACTORIES))
    @pytest.mark.parametrize("workers", [1, 2])
    def test_tracing_does_not_change_results(self, method, objective8,
                                             workers):
        plain = METHOD_FACTORIES[method](workers).run(objective8, seed=13)
        sink = MemorySink()
        with use_tracer(Tracer(sink)), use_registry(MetricsRegistry()):
            traced = METHOD_FACTORIES[method](workers).run(objective8,
                                                           seed=13)
        assert_results_identical(plain, traced)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_restart_events_match_results(self, objective8, workers):
        """One search.restart event per start, with the convergence data,
        emitted identically for serial and pooled execution."""
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            res = TabuSearch(restarts=3, max_iterations=6,
                             workers=workers).run(objective8, seed=5)
        events = sink.by_name("search.restart")
        assert [e["attrs"]["index"] for e in events] == [0, 1, 2]
        traces = [e["attrs"]["trace"] for e in events]
        assert [v for t in traces for v in t] == res.trace
        # The merge keeps the earliest start within _EPS of the optimum, so
        # the winning value matches the per-start minimum only up to _EPS.
        best_of_starts = min(e["attrs"]["best_value"] for e in events)
        assert res.best_value == pytest.approx(best_of_starts, abs=1e-9)
        assert res.best_value in [e["attrs"]["best_value"] for e in events]
        assert sum(e["attrs"]["iterations"] for e in events) == res.iterations
        for e in events:
            assert e["attrs"]["method"] == "tabu"
            for key in ("accepted", "uphill", "tabu_masked"):
                assert e["attrs"][key] >= 0
        (span_rec,) = sink.by_name("search.tabu")
        assert span_rec["attrs"]["best_value"] == res.best_value
        assert span_rec["attrs"]["restarts"] == 3

    def test_single_restart_also_emits_event(self, objective8):
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            TabuSearch(restarts=1, max_iterations=4).run(objective8, seed=2)
        (event,) = sink.by_name("search.restart")
        assert event["attrs"]["index"] == 0

    def test_tabu_convergence_counters_consistent(self, objective8):
        """accepted + uphill == applied moves == iterations, per restart."""
        res = TabuSearch(restarts=1, max_iterations=8).run(objective8, seed=3)
        assert res.meta["accepted"] + res.meta["uphill"] == res.iterations
        # Masking is judged once per loop iteration (including ones that
        # end the seed without applying a move), so cap by max_iterations.
        assert 0 <= res.meta["tabu_masked"] <= 8


def test_restart_traces_concatenate_in_seed_order(objective8):
    """The merged trace is the serial concatenation of per-seed traces."""
    res = TabuSearch(restarts=3, max_iterations=6, workers=3).run(
        objective8, seed=5
    )
    assert len(res.restart_indices) == 3
    assert res.restart_indices[0] == 0
    assert res.restart_indices == sorted(res.restart_indices)
    assert res.best_value == pytest.approx(min(res.trace))
