"""Tests for SA, GA, GSA, A* and random search."""

import numpy as np
import pytest

from repro.core.mapping import random_partition
from repro.search.annealing import SimulatedAnnealing
from repro.search.astar import AStarSearch
from repro.search.base import SimilarityObjective
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.genetic import GeneticAlgorithm, decode_permutation, order_crossover
from repro.search.gsa import GeneticSimulatedAnnealing
from repro.search.random_search import RandomSearch


@pytest.fixture
def objective8(table8):
    return SimilarityObjective(table8, [4, 4])


@pytest.fixture
def planted_objective():
    """6 nodes in two obvious blocks of 3."""
    t = np.full((6, 6), 10.0)
    for block in ((0, 1, 2), (3, 4, 5)):
        for i in block:
            for j in block:
                t[i, j] = 1.0
    np.fill_diagonal(t, 0.0)
    return SimilarityObjective(t, [3, 3])


class TestParamValidation:
    def test_sa_params(self):
        with pytest.raises(ValueError):
            SimulatedAnnealing(iterations=0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(cooling=1.0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(steps_per_temperature=0)

    def test_ga_params(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm(population=1)
        with pytest.raises(ValueError):
            GeneticAlgorithm(generations=0)
        with pytest.raises(ValueError):
            GeneticAlgorithm(mutation_rate=1.5)
        with pytest.raises(ValueError):
            GeneticAlgorithm(elite=100, population=10)

    def test_gsa_params(self):
        with pytest.raises(ValueError):
            GeneticSimulatedAnnealing(initial_temperature=0)
        with pytest.raises(ValueError):
            GeneticSimulatedAnnealing(cooling=0)

    def test_astar_params(self):
        with pytest.raises(ValueError):
            AStarSearch(max_expansions=0)

    def test_random_params(self):
        with pytest.raises(ValueError):
            RandomSearch(samples=0)


@pytest.mark.parametrize("method", [
    SimulatedAnnealing(iterations=800),
    GeneticAlgorithm(population=24, generations=30),
    GeneticSimulatedAnnealing(population=12, generations=40),
    AStarSearch(),
    RandomSearch(samples=300),
])
class TestAllMethodsOnPlanted:
    def test_finds_planted_blocks(self, method, planted_objective):
        res = method.run(planted_objective, seed=0)
        assert set(res.best_partition.clusters()) == {(0, 1, 2), (3, 4, 5)}

    def test_deterministic(self, method, planted_objective):
        a = method.run(planted_objective, seed=3)
        b = method.run(planted_objective, seed=3)
        assert a.best_value == b.best_value
        assert a.best_partition == b.best_partition

    def test_result_consistent(self, method, planted_objective):
        res = method.run(planted_objective, seed=1)
        assert planted_objective.value(res.best_partition) == pytest.approx(
            res.best_value
        )


class TestAgainstExhaustive:
    """On the 8-switch instance every serious heuristic should be optimal
    or near-optimal (within 10 %)."""

    @pytest.fixture(scope="class")
    def exact_value(self, table8):
        obj = SimilarityObjective(table8, [4, 4])
        return ExhaustiveSearch().run(obj).best_value

    @pytest.mark.parametrize("method,slack", [
        (SimulatedAnnealing(iterations=2000), 1.10),
        (GeneticAlgorithm(population=40, generations=50), 1.10),
        (GeneticSimulatedAnnealing(population=16, generations=60), 1.10),
        (AStarSearch(), 1.0000001),   # exact within its budget
        (RandomSearch(samples=35 * 20), 1.0000001),  # covers the whole space whp
    ])
    def test_near_optimal(self, method, slack, objective8, exact_value):
        res = method.run(objective8, seed=0)
        assert res.best_value <= exact_value * slack + 1e-12

    def test_astar_reports_optimal(self, objective8, exact_value):
        res = AStarSearch().run(objective8, seed=0)
        assert res.optimal is True
        assert res.best_value == pytest.approx(exact_value)


class TestGeneticMachinery:
    def test_decode_permutation(self):
        perm = np.array([3, 1, 0, 2])
        p = decode_permutation(perm, [2, 2], 4)
        assert p.clusters() == [(1, 3), (0, 2)]

    def test_decode_partial(self):
        perm = np.array([3, 1])
        p = decode_permutation(perm, [2], 5)
        assert p.clusters() == [(1, 3)]
        assert (p.labels == -1).sum() == 3

    def test_order_crossover_is_permutation(self):
        rng = np.random.default_rng(0)
        p1 = np.array([0, 1, 2, 3, 4, 5])
        p2 = np.array([5, 4, 3, 2, 1, 0])
        for _ in range(20):
            child = order_crossover(p1, p2, rng)
            assert sorted(child.tolist()) == list(range(6))

    def test_warm_start_ga(self, objective8):
        init = random_partition([4, 4], 8, seed=5)
        res = GeneticAlgorithm(population=10, generations=5).run(
            objective8, seed=0, initial=init
        )
        assert res.best_value <= objective8.value(init) + 1e-12


class TestAStarBudget:
    def test_budget_fallback_feasible(self, table16):
        obj = SimilarityObjective(table16, [4, 4, 4, 4])
        res = AStarSearch(max_expansions=50).run(obj, seed=0)
        assert res.optimal is False
        assert res.best_partition.sizes() == [4, 4, 4, 4]
        assert obj.value(res.best_partition) == pytest.approx(res.best_value)


class TestRandomSearch:
    def test_monotone_improvement_with_samples(self, objective8):
        small = RandomSearch(samples=5).run(objective8, seed=0)
        large = RandomSearch(samples=200).run(objective8, seed=0)
        assert large.best_value <= small.best_value

    def test_initial_counts(self, objective8):
        init = random_partition([4, 4], 8, seed=2)
        res = RandomSearch(samples=1).run(objective8, seed=0, initial=init)
        assert res.best_value <= objective8.value(init) + 1e-12
