"""Batch planning and worker-side execution: grouping, dedup, determinism."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.scheduler import CommunicationAwareScheduler
from repro.faults.model import FaultScenario
from repro.service.batch import execute_batch, execute_request, plan_batches
from repro.service.protocol import SimulateSpec, build_search
from repro.service.queue import Job
from repro.topology.irregular import random_irregular_topology


def _jobs(requests):
    """Wrap requests as queue jobs (futures need a live loop)."""
    async def build():
        loop = asyncio.get_running_loop()
        return [
            Job(request=r, payload=r.to_dict(), fingerprint=r.fingerprint(),
                future=loop.create_future(), priority=r.priority)
            for r in requests
        ]
    return asyncio.run(build())


class TestPlanBatches:
    def test_groups_by_topology(self, make_request):
        other = random_irregular_topology(8, seed=77, name="svc8-other")
        jobs = _jobs([
            make_request(seed=1),
            make_request(seed=1, topology=other),
            make_request(seed=2),
        ])
        groups = plan_batches(jobs)
        assert [g.total for g in groups] == [2, 1]
        assert groups[0].topology_fp != groups[1].topology_fp

    def test_duplicates_fold_into_one_entry(self, make_request):
        jobs = _jobs([
            make_request(seed=1),
            make_request(seed=1, priority=5),   # same fingerprint
            make_request(seed=2),
        ])
        (group,) = plan_batches(jobs)
        assert group.total == 3
        assert group.unique == 2
        assert len(group.payloads()) == 2

    def test_dedup_off_keeps_every_job_separate(self, make_request):
        jobs = _jobs([make_request(seed=1), make_request(seed=1)])
        (group,) = plan_batches(jobs, dedup=False)
        assert group.unique == 2

    def test_planning_is_order_preserving(self, make_request):
        jobs = _jobs([make_request(seed=s) for s in (3, 1, 2)])
        (group,) = plan_batches(jobs)
        assert [e[0].request.seed for e in group.entries] == [3, 1, 2]

    def test_empty_input(self):
        assert plan_batches([]) == []


class TestExecutionDeterminism:
    def test_solo_equals_batched_equals_cold(self, make_request):
        # The determinism contract at the executor level: one request's
        # canonical payload is byte-identical alone, inside a batch, and
        # with cold caches.
        reqs = [make_request(seed=s) for s in (1, 2, 3)]
        payloads = [r.to_dict() for r in reqs]
        batched = execute_batch(payloads)
        solo = [execute_batch([p])[0] for p in payloads]
        cold = [execute_request(p, cold=True) for p in payloads]
        for a, b, c in zip(batched, solo, cold):
            blob = lambda d: json.dumps(d, sort_keys=True)  # noqa: E731
            assert blob(a) == blob(b) == blob(c)

    def test_matches_direct_scheduler_call(self, make_request, service_topo):
        req = make_request(seed=9)
        payload = execute_request(req.to_dict())
        scheduler = CommunicationAwareScheduler(
            service_topo, search=build_search("tabu"))
        direct = scheduler.schedule(req.workload, seed=9)
        assert payload["f_g"] == direct.f_g
        assert payload["c_c"] == direct.c_c
        assert payload["partition"]["labels"] == list(direct.partition.labels)

    def test_response_carries_the_request_fingerprint(self, make_request):
        req = make_request(seed=4)
        assert execute_request(req.to_dict())["fingerprint"] \
            == req.fingerprint()


class TestDegradedExecution:
    def test_faulted_request_gets_a_degraded_response(self, service_topo,
                                                      make_request):
        req = make_request(
            faults=FaultScenario(links=(service_topo.links[0],)))
        payload = execute_request(req.to_dict())
        assert payload["partition"] is None
        assert payload["f_g"] is None
        degraded = payload["degraded"]
        assert degraded["scenario"].startswith("L")
        assert isinstance(degraded["placements"], list)
        assert json.dumps(payload)  # JSON-clean

    def test_degraded_execution_is_deterministic(self, service_topo,
                                                 make_request):
        req = make_request(
            faults=FaultScenario(links=(service_topo.links[1],)))
        a = execute_request(req.to_dict())
        b = execute_request(req.to_dict(), cold=True)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestSimulation:
    def test_simulate_spec_adds_the_sweep(self, make_request):
        req = make_request(
            simulate=SimulateSpec(points=2, warmup=10, measure=30))
        payload = execute_request(req.to_dict())
        sim = payload["simulation"]
        assert len(sim) == 2
        for row in sim:
            assert set(row) == {"rate", "accepted", "avg_latency"}

    def test_simulation_is_deterministic(self, make_request):
        req = make_request(
            simulate=SimulateSpec(points=2, warmup=10, measure=30))
        a = execute_request(req.to_dict())
        b = execute_request(req.to_dict(), cold=True)
        assert a["simulation"] == b["simulation"]

    def test_batch_engine_byte_identical_to_fast(self, make_request):
        """The executor's determinism contract is engine-independent.

        A request asking for ``engine="batch"`` runs its whole sweep as
        one simulate_batch call; the canonical response (minus the
        fingerprint, which encodes the requested engine) must be
        byte-identical to the ``engine="fast"`` run.
        """
        def respond(engine):
            req = make_request(
                seed=3,
                simulate=SimulateSpec(points=3, warmup=10, measure=30,
                                      engine=engine))
            out = execute_batch([req.to_dict()])[0]
            out.pop("fingerprint")
            return json.dumps(out, sort_keys=True)

        assert respond("fast") == respond("batch")

    def test_vector_engine_request_is_deterministic(self, make_request):
        """``engine="vector"`` rides the same worker seam.

        Vector responses are NOT byte-identical to the fast lineage
        (statistical contract, DESIGN.md §6g), but the service's own
        determinism guarantee still holds: the same request must produce
        the same reply on every execution, warm or cold.
        """
        req = make_request(
            seed=3,
            simulate=SimulateSpec(points=3, warmup=10, measure=30,
                                  engine="vector"))
        a = execute_batch([req.to_dict()])[0]
        b = execute_batch([req.to_dict()])[0]
        assert a == b
        assert len(a["simulation"]) == 3
