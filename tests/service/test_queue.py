"""Admission policy and job-queue tests (priority, backpressure, windows)."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.protocol import SimulateSpec
from repro.service.queue import (
    AdmissionError,
    AdmissionPolicy,
    BackpressureError,
    Job,
    JobQueue,
)
from repro.topology.irregular import random_irregular_topology


def run(coro):
    return asyncio.run(coro)


def _job(request, *, priority=0) -> Job:
    """Build a Job; must be called inside a running event loop."""
    return Job(request=request, payload=request.to_dict(),
               fingerprint=request.fingerprint(),
               future=asyncio.get_running_loop().create_future(),
               priority=priority)


class TestAdmissionPolicy:
    def test_default_policy_admits_paper_requests(self, make_request):
        AdmissionPolicy().check(make_request())

    def test_topology_size_bound(self, make_request):
        big = random_irregular_topology(16, seed=1)
        req = make_request(topology=big)
        with pytest.raises(AdmissionError, match="switches"):
            AdmissionPolicy(max_switches=8).check(req)

    def test_cluster_bound(self, make_request):
        with pytest.raises(AdmissionError, match="clusters"):
            AdmissionPolicy(max_clusters=2).check(make_request())

    def test_method_allowlist(self, make_request):
        policy = AdmissionPolicy(allowed_methods=frozenset({"random"}))
        policy.check(make_request(method="random"))
        with pytest.raises(AdmissionError, match="not admitted"):
            policy.check(make_request(method="tabu"))

    def test_simulation_bounds(self, make_request):
        req = make_request(
            simulate=SimulateSpec(points=8, warmup=100, measure=1000))
        with pytest.raises(AdmissionError, match="points"):
            AdmissionPolicy(max_simulate_points=4).check(req)
        with pytest.raises(AdmissionError, match="cycles"):
            AdmissionPolicy(max_simulate_cycles=1000).check(req)


class TestJobQueue:
    def test_priority_order_fifo_within_priority(self, make_request):
        async def body():
            q = JobQueue(max_pending=8)
            low1 = _job(make_request(seed=1), priority=0)
            low2 = _job(make_request(seed=2), priority=0)
            high = _job(make_request(seed=3), priority=5)
            q.put_nowait(low1)
            q.put_nowait(low2)
            q.put_nowait(high)
            assert await q.get() is high
            assert await q.get() is low1
            assert await q.get() is low2
        run(body())

    def test_backpressure_when_full(self, make_request):
        async def body():
            q = JobQueue(max_pending=2)
            q.put_nowait(_job(make_request(seed=1)))
            q.put_nowait(_job(make_request(seed=2)))
            with pytest.raises(BackpressureError) as exc:
                q.put_nowait(_job(make_request(seed=3)))
            assert exc.value.retry_after > 0
        run(body())

    def test_depth_tracks_puts_and_gets(self, make_request):
        async def body():
            q = JobQueue(max_pending=4)
            assert q.depth == 0
            q.put_nowait(_job(make_request(seed=1)))
            assert q.depth == 1
            await q.get()
            assert q.depth == 0
        run(body())

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            JobQueue(max_pending=0)

    def test_drain_empties_the_queue(self, make_request):
        async def body():
            q = JobQueue(max_pending=4)
            for s in range(3):
                q.put_nowait(_job(make_request(seed=s)))
            assert len(q.drain()) == 3
            assert q.depth == 0
        run(body())


class TestBatchWindow:
    def test_collects_whatever_is_queued(self, make_request):
        async def body():
            q = JobQueue(max_pending=8)
            for s in range(3):
                q.put_nowait(_job(make_request(seed=s)))
            batch = await q.get_batch(max_batch=8, window=0.01)
            assert len(batch) == 3
        run(body())

    def test_max_batch_caps_the_drain(self, make_request):
        async def body():
            q = JobQueue(max_pending=8)
            for s in range(5):
                q.put_nowait(_job(make_request(seed=s)))
            batch = await q.get_batch(max_batch=2, window=0.01)
            assert len(batch) == 2
            assert q.depth == 3
        run(body())

    def test_max_batch_one_degrades_to_single_dispatch(self, make_request):
        async def body():
            q = JobQueue(max_pending=8)
            q.put_nowait(_job(make_request(seed=1)))
            q.put_nowait(_job(make_request(seed=2)))
            batch = await q.get_batch(max_batch=1, window=1.0)
            assert len(batch) == 1
        run(body())

    def test_window_picks_up_late_arrivals(self, make_request):
        async def body():
            q = JobQueue(max_pending=8)
            q.put_nowait(_job(make_request(seed=1)))

            async def late():
                await asyncio.sleep(0.02)
                q.put_nowait(_job(make_request(seed=2)))

            task = asyncio.ensure_future(late())
            batch = await q.get_batch(max_batch=4, window=0.5)
            await task
            assert len(batch) == 2
        run(body())

    def test_first_pop_waits_for_work(self, make_request):
        async def body():
            q = JobQueue(max_pending=8)

            async def later():
                await asyncio.sleep(0.02)
                q.put_nowait(_job(make_request(seed=1)))

            task = asyncio.ensure_future(later())
            batch = await q.get_batch(max_batch=4, window=0.01)
            await task
            assert len(batch) == 1
        run(body())
