"""Wire-protocol tests: round-trips, fingerprints, strict rejection."""

from __future__ import annotations

import json

import pytest

from repro.faults.model import FaultScenario
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    SEARCH_METHODS,
    ScheduleRequest,
    ScheduleResponse,
    SimulateSpec,
    build_search,
    decode_line,
    encode_line,
    error_envelope,
    ok_envelope,
)
from repro.topology.irregular import random_irregular_topology


class TestBuildSearch:
    def test_every_registered_method_constructs(self):
        for name in SEARCH_METHODS:
            assert build_search(name) is not None

    def test_unknown_method_is_rejected(self):
        with pytest.raises(ProtocolError, match="unknown search method"):
            build_search("quantum")

    def test_workers_knob_is_forbidden(self):
        with pytest.raises(ProtocolError, match="workers"):
            build_search("tabu", {"workers": 8})

    def test_unknown_parameter_is_rejected_with_the_valid_set(self):
        with pytest.raises(ProtocolError, match="no parameter"):
            build_search("tabu", {"warp_factor": 9})

    def test_parameters_are_passed_through(self):
        search = build_search("tabu", {"restarts": 3})
        assert search.restarts == 3

    def test_exhaustive_and_astar_are_not_served(self):
        # Deliberate: their cost explodes with topology size, which a
        # shared service must not let one request impose.
        assert "exhaustive" not in SEARCH_METHODS
        assert "astar" not in SEARCH_METHODS


class TestScheduleRequestRoundTrip:
    def test_round_trip_preserves_everything(self, make_request):
        req = make_request(seed=5, priority=3, method="annealing")
        back = ScheduleRequest.from_dict(req.to_dict())
        assert back.to_dict() == req.to_dict()
        assert back.fingerprint() == req.fingerprint()

    def test_round_trip_with_faults_and_simulate(self, service_topo):
        req = ScheduleRequest.build(
            service_topo, clusters=4,
            faults=FaultScenario(links=(service_topo.links[0],)),
            simulate=SimulateSpec(points=2, warmup=10, measure=20),
        )
        back = ScheduleRequest.from_dict(req.to_dict())
        assert back.to_dict() == req.to_dict()
        assert back.faults is not None and back.simulate is not None

    def test_wire_form_is_json_serializable(self, make_request):
        json.dumps(make_request().to_dict())


class TestFingerprint:
    def test_priority_does_not_change_the_fingerprint(self, make_request):
        # Two requests differing only in priority are duplicates: they
        # share one computation and one store entry.
        assert (make_request(priority=0).fingerprint()
                == make_request(priority=9).fingerprint())

    def test_seed_method_and_topology_do(self, make_request):
        base = make_request().fingerprint()
        assert make_request(seed=2).fingerprint() != base
        assert make_request(method="random").fingerprint() != base
        other = random_irregular_topology(8, seed=99, name="svc8b")
        assert make_request(topology=other).fingerprint() != base

    def test_fingerprint_is_stable_across_encodings(self, make_request):
        req = make_request(seed=4)
        back = ScheduleRequest.from_dict(
            json.loads(json.dumps(req.to_dict())))
        assert back.fingerprint() == req.fingerprint()


class TestScheduleRequestRejection:
    def test_non_dict_payloads(self):
        for bad in (None, 42, "x", ["schedule_request"]):
            with pytest.raises(ProtocolError):
                ScheduleRequest.from_dict(bad)

    def test_wrong_type_tag(self, make_request):
        d = make_request().to_dict()
        d["type"] = "topology"
        with pytest.raises(ProtocolError, match="schedule_request"):
            ScheduleRequest.from_dict(d)

    def test_unknown_keys_are_rejected(self, make_request):
        d = make_request().to_dict()
        d["shoe_size"] = 43
        with pytest.raises(ProtocolError, match="unknown keys"):
            ScheduleRequest.from_dict(d)

    def test_missing_required_keys(self, make_request):
        d = make_request().to_dict()
        del d["workload"]
        with pytest.raises(ProtocolError, match="missing"):
            ScheduleRequest.from_dict(d)

    def test_future_version_is_rejected(self, make_request):
        d = make_request().to_dict()
        d["version"] = 99
        with pytest.raises(ProtocolError, match="newer"):
            ScheduleRequest.from_dict(d)

    def test_bad_seed_type(self, make_request):
        d = make_request().to_dict()
        d["seed"] = "seven"
        with pytest.raises(ProtocolError, match="seed"):
            ScheduleRequest.from_dict(d)

    def test_malformed_topology_payload(self, make_request):
        d = make_request().to_dict()
        d["topology"] = {"type": "topology", "version": 1}
        with pytest.raises(ProtocolError, match="topology"):
            ScheduleRequest.from_dict(d)

    def test_bad_simulate_spec(self, make_request):
        d = make_request().to_dict()
        d["simulate"] = {"points": 0}
        with pytest.raises(ProtocolError, match="points"):
            ScheduleRequest.from_dict(d)
        d["simulate"] = {"engine": "antigravity"}
        with pytest.raises(ProtocolError, match="engine"):
            ScheduleRequest.from_dict(d)

    def test_faults_must_reference_the_topology(self, service_topo):
        with pytest.raises(ValueError):
            ScheduleRequest.build(
                service_topo, clusters=4,
                faults=FaultScenario(links=((97, 98),)),
            )

    def test_clusters_must_divide_switches(self, service_topo):
        with pytest.raises(ProtocolError, match="divide"):
            ScheduleRequest.build(service_topo, clusters=3)


class TestScheduleResponse:
    def test_round_trip(self, make_request):
        from repro.service.batch import execute_request

        payload = execute_request(make_request().to_dict())
        back = ScheduleResponse.from_dict(payload)
        assert back.to_dict() == payload

    def test_bad_fingerprint_rejected(self, make_request):
        from repro.service.batch import execute_request

        payload = execute_request(make_request().to_dict())
        payload["fingerprint"] = "short"
        with pytest.raises(ProtocolError, match="fingerprint"):
            ScheduleResponse.from_dict(payload)

    def test_non_numeric_scores_rejected(self, make_request):
        from repro.service.batch import execute_request

        payload = execute_request(make_request().to_dict())
        payload["f_g"] = "great"
        with pytest.raises(ProtocolError, match="f_g"):
            ScheduleResponse.from_dict(payload)


class TestLineFraming:
    def test_encode_decode_round_trip(self):
        msg = ok_envelope(op="ping", n=3)
        assert decode_line(encode_line(msg)) == msg

    def test_garbage_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_line(b"{not json}\n")

    def test_non_object_json_is_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_line(b"[1,2,3]\n")

    def test_oversized_messages_are_refused_both_ways(self):
        big = {"blob": "x" * (MAX_LINE_BYTES + 1)}
        with pytest.raises(ProtocolError, match="frame limit"):
            encode_line(big)
        with pytest.raises(ProtocolError, match="frame limit"):
            decode_line(b"x" * (MAX_LINE_BYTES + 1))

    def test_envelopes(self):
        err = error_envelope("backpressure", "full", retry_after=0.5)
        assert err["ok"] is False
        assert err["error"]["retry_after"] == 0.5
        assert ok_envelope(x=1) == {"ok": True, "x": 1}
