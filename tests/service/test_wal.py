"""Unit tests for the write-ahead journal: recovery, torn tails, compaction."""

from __future__ import annotations

import json

import pytest

from repro.service.wal import WalError, WriteAheadLog


def payload(i: int) -> dict:
    return {"kind": "schedule_request", "seed": i}


class TestAppendAndPending:
    def test_fresh_log_is_empty(self, tmp_path):
        with WriteAheadLog(tmp_path / "w.wal") as wal:
            assert len(wal) == 0
            assert wal.pending() == []
            assert wal.recovered == 0

    def test_accept_then_done_settles_the_entry(self, tmp_path):
        with WriteAheadLog(tmp_path / "w.wal") as wal:
            wal.append_accept("fp-a", payload(1)).result(timeout=10)
            assert len(wal) == 1
            wal.append_done("fp-a").result(timeout=10)
            assert len(wal) == 0

    def test_pending_preserves_acceptance_order(self, tmp_path):
        with WriteAheadLog(tmp_path / "w.wal") as wal:
            for i, fp in enumerate(["fp-c", "fp-a", "fp-b"]):
                wal.append_accept(fp, payload(i), priority=i).result(10)
            items = wal.pending()
        assert [it["fp"] for it in items] == ["fp-c", "fp-a", "fp-b"]
        assert [it["priority"] for it in items] == [0, 1, 2]

    def test_append_after_close_raises_typed(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.wal")
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append_accept("fp", payload(0))
        # done after close is a harmless no-op (shutdown race).
        wal.append_done("fp").result(timeout=10)


class TestRecovery:
    def test_unsettled_accepts_survive_a_reopen(self, tmp_path):
        path = tmp_path / "w.wal"
        with WriteAheadLog(path) as wal:
            wal.append_accept("fp-a", payload(1)).result(10)
            wal.append_accept("fp-b", payload(2)).result(10)
            wal.append_done("fp-a").result(10)
        reopened = WriteAheadLog(path)
        try:
            assert reopened.recovered == 1
            items = reopened.pending()
            assert [it["fp"] for it in items] == ["fp-b"]
            assert items[0]["payload"] == payload(2)
        finally:
            reopened.close()

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "w.wal"
        with WriteAheadLog(path) as wal:
            wal.append_accept("fp-a", payload(1)).result(10)
        with open(path, "a") as fh:
            fh.write('{"op": "accept", "fp": "fp-half", "pay')   # kill point
        reopened = WriteAheadLog(path)
        try:
            assert [it["fp"] for it in reopened.pending()] == ["fp-a"]
        finally:
            reopened.close()

    def test_opening_compacts_settled_entries_away(self, tmp_path):
        path = tmp_path / "w.wal"
        with WriteAheadLog(path) as wal:
            for i in range(5):
                wal.append_accept(f"fp-{i}", payload(i)).result(10)
                wal.append_done(f"fp-{i}").result(10)
            wal.append_accept("fp-live", payload(9)).result(10)
        WriteAheadLog(path).close()
        lines = [ln for ln in path.read_text().splitlines() if ln]
        # Header + the one live accept; the ten settled records are gone.
        assert len(lines) == 2
        assert json.loads(lines[1])["fp"] == "fp-live"

    def test_not_a_wal_file_raises_typed(self, tmp_path):
        path = tmp_path / "w.wal"
        path.write_text('{"some": "other json"}\n')
        with pytest.raises(WalError, match="not a repro service WAL"):
            WriteAheadLog(path)

    def test_newer_version_raises_typed(self, tmp_path):
        path = tmp_path / "w.wal"
        path.write_text(
            '{"magic": "repro-service-wal", "version": 99}\n')
        with pytest.raises(WalError, match="newer"):
            WriteAheadLog(path)

    def test_duplicate_accepts_fold_to_one_pending_entry(self, tmp_path):
        path = tmp_path / "w.wal"
        with WriteAheadLog(path) as wal:
            wal.append_accept("fp-a", payload(1)).result(10)
            wal.append_accept("fp-a", payload(1)).result(10)
        reopened = WriteAheadLog(path)
        try:
            assert reopened.recovered == 1
            assert len(reopened.pending()) == 1
        finally:
            reopened.close()


class TestIntrospection:
    def test_status_is_json_ready(self, tmp_path):
        with WriteAheadLog(tmp_path / "w.wal") as wal:
            wal.append_accept("fp-a", payload(1)).result(10)
            status = wal.status()
        assert status["pending"] == 1
        assert status["recovered"] == 0
        assert status["path"].endswith("w.wal")
        assert "fp" not in status        # no payloads leak into status

    def test_repr_mentions_the_path_and_pending_count(self, tmp_path):
        with WriteAheadLog(tmp_path / "w.wal") as wal:
            assert "pending=0" in repr(wal)
