"""Unit tests for the pool supervisor and its circuit breaker.

The breaker is tested against a stepped fake clock (no sleeping); the
supervisor against scripted fake pools that crash, hang or refuse on cue,
plus one real-pool crash-loop test that exercises the genuine
``BrokenProcessPool`` path end to end.
"""

from __future__ import annotations

import asyncio
import os
import random
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.parallel import WorkerPool
from repro.service.supervisor import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    PoolSupervisor,
    WorkerCrashError,
)


class SteppedClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def make_breaker(threshold=3, reset=2.0):
    clock = SteppedClock()
    breaker = CircuitBreaker(BreakerConfig(failure_threshold=threshold,
                                           reset_timeout=reset), clock=clock)
    return breaker, clock


class TestCircuitBreaker:
    def test_stays_closed_below_the_threshold(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.reject_after() is None
        assert breaker.trips == 0

    def test_opens_at_the_threshold_with_a_retry_hint(self):
        breaker, _ = make_breaker(threshold=3, reset=2.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        hint = breaker.reject_after()
        assert hint is not None and 0 < hint <= 2.0

    def test_half_open_after_the_reset_timeout_admits_traffic(self):
        breaker, clock = make_breaker(threshold=1, reset=2.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now += 2.5
        assert breaker.state == "half_open"
        assert breaker.reject_after() is None   # the probe is admitted

    def test_success_in_half_open_closes_failure_reopens(self):
        breaker, clock = make_breaker(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.now += 1.5
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed" and breaker.reject_after() is None

        breaker.record_failure()                # open again (threshold 1)
        clock.now += 1.5
        assert breaker.state == "half_open"
        breaker.record_failure()                # failed probe -> re-open
        assert breaker.state == "open"

    def test_a_single_success_resets_the_failure_count(self):
        breaker, _ = make_breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_status_is_json_ready(self):
        breaker, _ = make_breaker(threshold=1)
        breaker.record_failure()
        status = breaker.status()
        assert status["state"] == "open"
        assert status["consecutive_failures"] == 1
        assert status["trips"] == 1

    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout"):
            BreakerConfig(reset_timeout=0.0)


# --------------------------------------------------------------------- #
# scripted pools
# --------------------------------------------------------------------- #

class FakePool:
    """A pool whose ``submit`` follows a script of outcomes.

    Script entries: ``("ok", value)`` resolves immediately, ``"broken"``
    raises :class:`BrokenProcessPool`, ``"hang"`` returns a future that
    never resolves, ``"refuse"`` raises ``OSError`` (the no-fork sandbox).
    """

    def __init__(self, script):
        self.script = list(script)
        self.restarts = 0
        self.active = True

    def submit(self, fn, *args):
        step = self.script.pop(0) if self.script else ("ok", None)
        if step == "broken":
            raise BrokenProcessPool("scripted crash")
        if step == "refuse":
            raise OSError("scripted: fork forbidden")
        future: Future = Future()
        if step == "hang":
            return future
        kind, value = step
        assert kind == "ok"
        try:
            future.set_result(value if value is not None else fn(*args))
        except Exception as exc:       # the job's own failure
            future.set_exception(exc)
        return future

    def restart(self):
        self.restarts += 1


def run(coro):
    return asyncio.run(coro)


def _echo(x):
    return x


class TestPoolSupervisor:
    def test_success_passes_through_and_closes_the_breaker(self):
        pool = FakePool([("ok", None)])
        sup = PoolSupervisor(pool, deadline=5.0)
        assert run(sup.run(_echo, 42)) == 42
        assert sup.status()["restarts"] == 0
        assert sup.breaker.state == "closed"

    def test_crash_restarts_and_redispatches_to_success(self):
        pool = FakePool(["broken", ("ok", 7)])
        sup = PoolSupervisor(pool, max_redispatch=2,
                             backoff_cap=0.01, rng=random.Random(1))
        assert run(sup.run(_echo, 7)) == 7
        assert pool.restarts == 1
        status = sup.status()
        assert status["restarts"] == 1 and status["redispatches"] == 1

    def test_crash_loop_exhausts_the_budget_typed(self):
        pool = FakePool(["broken", "broken", "broken"])
        sup = PoolSupervisor(pool, max_redispatch=2,
                             backoff_cap=0.01, rng=random.Random(1))
        with pytest.raises(WorkerCrashError) as err:
            run(sup.run(_echo, 1))
        assert err.value.code == "crashed"
        assert pool.restarts == 3
        assert sup.status()["redispatches"] == 2

    def test_hang_trips_the_deadline_and_restarts_the_pool(self):
        pool = FakePool(["hang"])
        sup = PoolSupervisor(pool, deadline=0.05)
        with pytest.raises(DeadlineExceededError) as err:
            run(sup.run(_echo, 1))
        assert err.value.code == "deadline"
        assert pool.restarts == 1
        assert sup.status()["deadline_trips"] == 1

    def test_open_breaker_rejects_before_touching_the_pool(self):
        pool = FakePool([])
        breaker, _ = make_breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        sup = PoolSupervisor(pool, breaker=breaker)
        with pytest.raises(CircuitOpenError) as err:
            run(sup.run(_echo, 1))
        assert err.value.code == "degraded"
        assert err.value.retry_after > 0
        assert pool.restarts == 0 and pool.script == []

    def test_consecutive_crashes_open_the_breaker(self):
        pool = FakePool(["broken"] * 6)
        breaker, _ = make_breaker(threshold=2, reset=60.0)
        sup = PoolSupervisor(pool, max_redispatch=1, breaker=breaker,
                             backoff_cap=0.01, rng=random.Random(1))
        with pytest.raises(WorkerCrashError):
            run(sup.run(_echo, 1))
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            run(sup.run(_echo, 1))

    def test_pool_refusal_falls_back_to_threads_for_good(self):
        pool = FakePool(["refuse"])
        sup = PoolSupervisor(pool, deadline=5.0)
        assert run(sup.run(_echo, 11)) == 11
        assert sup.thread_fallback
        # Subsequent runs never touch the pool again.
        assert run(sup.run(_echo, 12)) == 12
        assert pool.script == []

    def test_jobs_own_exception_propagates_unchanged(self):
        def boom():
            raise ValueError("the job's own bug")

        pool = FakePool([])
        sup = PoolSupervisor(pool, deadline=5.0)

        async def _go():
            # FakePool.submit calls fn eagerly, so the error surfaces
            # through the resolved future exactly like a pool would.
            pool.script = [("ok", None)]
            return await sup.run(boom)

        with pytest.raises(ValueError, match="the job's own bug"):
            run(_go())
        assert pool.restarts == 0

    def test_heartbeat_probes_an_idle_pool_and_restarts_on_a_miss(self):
        # First probe echoes wrong -> miss + restart; second echoes right.
        class ProbePool(FakePool):
            def __init__(self):
                super().__init__([])
                self.probes = 0

            def submit(self, fn, *args):
                self.probes += 1
                future: Future = Future()
                if self.probes == 1:
                    future.set_result(-1)        # wrong echo -> miss
                else:
                    future.set_result(fn(*args))
                return future

        pool = ProbePool()
        sup = PoolSupervisor(pool, heartbeat_interval=0.02,
                             heartbeat_timeout=1.0)

        async def _go():
            await sup.start()
            for _ in range(200):
                await asyncio.sleep(0.01)
                c = sup.status()
                if c["heartbeat_misses"] >= 1 and c["heartbeats"] >= 1:
                    break
            await sup.stop()
            return sup.status()

        status = run(_go())
        assert status["heartbeat_misses"] >= 1
        assert status["heartbeats"] >= 1
        assert pool.restarts >= 1

    def test_constructor_validates_its_knobs(self):
        pool = FakePool([])
        with pytest.raises(ValueError, match="deadline"):
            PoolSupervisor(pool, deadline=0.0)
        with pytest.raises(ValueError, match="max_redispatch"):
            PoolSupervisor(pool, max_redispatch=-1)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            PoolSupervisor(pool, heartbeat_interval=0.0)


def _exit_hard():
    os._exit(13)


class TestRealPool:
    def test_real_worker_crash_is_typed_and_the_pool_recovers(self):
        pool = WorkerPool(workers=2)
        try:
            sup = PoolSupervisor(pool, max_redispatch=1,
                                 backoff_cap=0.01, rng=random.Random(1))

            async def _go():
                with pytest.raises(WorkerCrashError):
                    await sup.run(_exit_hard)
                # The restarted pool serves clean work again.
                return await sup.run(_echo, 99)

            assert run(_go()) == 99
            assert sup.status()["restarts"] >= 1
        finally:
            pool.terminate()
