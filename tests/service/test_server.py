"""End-to-end service tests over a real loopback socket.

The centrepiece is the determinism contract: an identical request returns
a byte-identical canonical payload whether it is served solo, coalesced
into a micro-batch, or replayed from the result store — only the reply
envelope's ``served`` field differs.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.service import (
    AdmissionPolicy,
    ScheduleRequest,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    execute_batch,
    running_service,
)
from repro.service.protocol import MAX_LINE_BYTES
from repro.topology.irregular import random_irregular_topology


def fast_config(**overrides) -> ServiceConfig:
    defaults = dict(port=0, workers=2, batch_window=0.01, max_batch=8)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def service():
    """One shared daemon for the read-mostly tests in this module."""
    with running_service(fast_config()) as svc:
        yield svc


@pytest.fixture()
def client(service):
    with ServiceClient(*service.address) as c:
        c.wait_until_ready()
        yield c


class TestBasicOps:
    def test_ping_reports_the_package_version(self, client):
        from repro import __version__

        reply = client.ping()
        assert reply["ok"] and reply["version"] == __version__

    def test_status_round_trips_through_the_protocol(self, client):
        status = client.status()
        assert status.queue_capacity == 64
        assert status.pool["workers"] == 2

    def test_unknown_op_is_an_error_not_a_crash(self, client):
        with pytest.raises(ServiceError, match="unknown op"):
            client._call({"op": "launch_missiles"})
        assert client.ping()["ok"]   # connection survives

    def test_garbage_line_is_a_protocol_error(self, service):
        with ServiceClient(*service.address) as c:
            c.connect()
            c._sock.sendall(b"{this is not json}\n")
            raw = c._rfile.readline(MAX_LINE_BYTES)
            reply = json.loads(raw)
            assert reply["ok"] is False
            assert reply["error"]["code"] == "protocol"


class TestDeterminismContract:
    def test_solo_batched_and_stored_are_bit_identical(self, make_request):
        # Fresh service so the store starts empty.  The same request is
        # served three ways; every payload must be byte-identical to a
        # direct in-process execution.
        req = make_request(seed=21)
        expected = canon(execute_batch([req.to_dict()])[0])
        with running_service(fast_config()) as svc:
            with ServiceClient(*svc.address) as c:
                c.wait_until_ready()
                first = c.submit(req)                # computed (solo batch)
                stored = c.submit(req)               # replayed from store

                # Batched: many distinct seeds + our request in one burst
                # from parallel clients, so the batcher coalesces them.
                results = {}

                def submit(seed):
                    with ServiceClient(*svc.address) as cc:
                        r = cc.submit(make_request(seed=seed))
                        results[seed] = r

                threads = [threading.Thread(target=submit, args=(s,))
                           for s in (22, 23, 24)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        assert first["served"]["from"] == "computed"
        assert stored["served"]["from"] == "store"
        assert canon(first["result"]) == expected
        assert canon(stored["result"]) == expected
        for seed, reply in results.items():
            direct = canon(
                execute_batch([make_request(seed=seed).to_dict()])[0])
            assert canon(reply["result"]) == direct

    def test_priority_does_not_leak_into_the_payload(self, make_request):
        with running_service(fast_config()) as svc:
            with ServiceClient(*svc.address) as c:
                c.wait_until_ready()
                a = c.submit(make_request(seed=31, priority=0))
                b = c.submit(make_request(seed=31, priority=9))
        assert canon(a["result"]) == canon(b["result"])
        assert b["served"]["from"] in ("store", "inflight")


class TestCoalescing:
    def test_concurrent_duplicates_compute_once(self, make_request):
        req = make_request(seed=41)
        n_clients = 6
        replies = []
        lock = threading.Lock()
        with running_service(fast_config(batch_window=0.05)) as svc:

            def submit():
                with ServiceClient(*svc.address) as c:
                    r = c.submit(req)
                    with lock:
                        replies.append(r)

            threads = [threading.Thread(target=submit)
                       for _ in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            status_served = None
            with ServiceClient(*svc.address) as c:
                status_served = c.status().served
        assert len(replies) == n_clients
        payloads = {canon(r["result"]) for r in replies}
        assert len(payloads) == 1
        # Every serving path is one of the three, and the expensive one
        # (computed) ran at most twice (duplicates that raced past the
        # in-flight check before the first was queued land in the same
        # batch and are folded by the planner).
        assert status_served["computed"] + status_served["store"] \
            + status_served["inflight"] == n_clients
        assert status_served["computed"] <= 2


class TestAdmissionAndBackpressure:
    def test_oversized_topology_is_rejected(self):
        big = random_irregular_topology(16, seed=5)
        req = ScheduleRequest.build(big, clusters=4)
        cfg = fast_config(admission=AdmissionPolicy(max_switches=8))
        with running_service(cfg) as svc:
            with ServiceClient(*svc.address) as c:
                c.wait_until_ready()
                with pytest.raises(ServiceError) as exc:
                    c.submit(req)
                assert exc.value.code == "rejected"
                served = c.status().rejected
        assert served["admission"] == 1

    def test_backpressure_carries_retry_after(self, make_request):
        # One worker, one in-flight batch slot, one queue slot: while the
        # first request computes, the second occupies the queue and every
        # further no-wait submit must bounce with a retry hint (dedup off
        # so nothing coalesces).
        cfg = fast_config(workers=1, max_pending=1, dedup=False,
                          max_inflight_batches=1, max_batch=1)
        with running_service(cfg) as svc:
            with ServiceClient(*svc.address) as c:
                c.wait_until_ready()
                codes = []
                for seed in range(60, 70):
                    try:
                        c.submit(make_request(seed=seed), wait=False)
                    except ServiceError as exc:
                        codes.append(exc.code)
                        if exc.code == "backpressure":
                            assert exc.extra["retry_after"] > 0
                assert "backpressure" in codes

    def test_malformed_request_payload_is_rejected(self, service, client,
                                                   make_request):
        bad = make_request().to_dict()
        bad["seed"] = "seven"
        with pytest.raises(ServiceError) as exc:
            client.submit_payload(bad)
        assert exc.value.code == "bad-request"


class TestTickets:
    def test_no_wait_returns_a_ticket_resolvable_later(self, make_request):
        req = make_request(seed=51)
        with running_service(fast_config()) as svc:
            with ServiceClient(*svc.address) as c:
                c.wait_until_ready()
                reply = c.submit(req, wait=False)
                ticket = reply["ticket"]
                assert ticket == req.fingerprint()
                # Poll until the store has it.
                import time
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    r = c.result(ticket)
                    if "result" in r:
                        break
                    time.sleep(0.02)
                else:  # pragma: no cover
                    pytest.fail("ticket never resolved")
        assert canon(r["result"]) == canon(execute_batch([req.to_dict()])[0])

    def test_unknown_ticket_is_an_error(self, client):
        with pytest.raises(ServiceError, match="unknown-ticket"):
            client.result("0" * 64)


class TestDegradedRequests:
    def test_faulted_topology_is_served_degraded(self, service_topo):
        from repro.faults.model import FaultScenario

        req = ScheduleRequest.build(
            service_topo, clusters=4,
            faults=FaultScenario(links=(service_topo.links[0],)))
        with running_service(fast_config()) as svc:
            with ServiceClient(*svc.address) as c:
                c.wait_until_ready()
                reply = c.submit(req)
        result = reply["result"]
        assert result["degraded"] is not None
        assert result["partition"] is None
        assert canon(result) == canon(execute_batch([req.to_dict()])[0])


class TestShutdown:
    def test_shutdown_op_stops_the_daemon_and_reaps_the_pool(self,
                                                             make_request):
        with running_service(fast_config()) as svc:
            with ServiceClient(*svc.address) as c:
                c.wait_until_ready()
                c.submit(make_request(seed=61))
                assert c.shutdown()["ok"]
            # The context manager joins the daemon thread; afterwards the
            # pool must be closed (its workers reaped).
        assert svc.pool.closed
        assert not svc.pool.active

    def test_stop_fails_pending_futures_instead_of_hanging(self,
                                                           make_request):
        cfg = fast_config(batch_window=5.0, max_batch=64)
        with running_service(cfg) as svc:
            address = svc.address
        # Exiting the context is itself the assertion: a service whose
        # queue drain hangs would deadlock the join in running_service.
        assert svc.pool.closed
        with pytest.raises((ConnectionRefusedError, ConnectionError,
                            OSError)):
            ServiceClient(*address).ping()
