"""Shared fixtures for the service suite: small requests, fast configs."""

from __future__ import annotations

import pytest

from repro.service import ScheduleRequest
from repro.topology.irregular import random_irregular_topology


@pytest.fixture(scope="session")
def service_topo():
    """A small topology so service tests stay fast."""
    return random_irregular_topology(8, seed=11, name="svc8")


@pytest.fixture()
def make_request(service_topo):
    """Factory for small scheduling requests against ``service_topo``."""

    def _make(*, seed: int = 1, priority: int = 0, method: str = "tabu",
              topology=None, **kwargs) -> ScheduleRequest:
        return ScheduleRequest.build(
            topology if topology is not None else service_topo,
            clusters=4, method=method, seed=seed, priority=priority,
            **kwargs,
        )

    return _make
