"""Property-based fuzzing of the wire protocol (Hypothesis, gated).

The contract under fuzz: every byte sequence fed to :func:`decode_line`
and every JSON value fed to :func:`ScheduleRequest.from_dict` either
parses cleanly or raises :class:`ProtocolError` — never a bare
``KeyError``/``TypeError``/``AttributeError`` escaping from parsing, and
never a hang.  This is the same promise the chaos harness checks over a
live socket (``torn_frames``), pinned here at the unit level where
Hypothesis can shrink counterexamples.

Skips cleanly when Hypothesis is not installed (the suite must not
acquire a hard dependency for one module).
"""

from __future__ import annotations

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.service.protocol import (  # noqa: E402
    MAX_LINE_BYTES,
    ProtocolError,
    ScheduleRequest,
    decode_line,
    encode_line,
)
from repro.topology.irregular import random_irregular_topology  # noqa: E402

FUZZ = settings(max_examples=150, deadline=None)


def valid_frame() -> bytes:
    topo = random_irregular_topology(8, seed=11, name="fuzz8")
    request = ScheduleRequest.build(topo, clusters=4, method="tabu", seed=3)
    return encode_line({"op": "submit", "request": request.to_dict()})


VALID_FRAME = valid_frame()
VALID_REQUEST_DICT = json.loads(VALID_FRAME)["request"]

# JSON-ish values: scalars, and nested lists/dicts thereof.
json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-2**40, max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40),
    lambda children: (st.lists(children, max_size=5)
                      | st.dictionaries(st.text(max_size=15), children,
                                        max_size=5)),
    max_leaves=25,
)


class TestDecodeLineTotal:
    @FUZZ
    @given(raw=st.binary(max_size=2048))
    def test_arbitrary_bytes_parse_or_raise_typed(self, raw):
        try:
            out = decode_line(raw)
        except ProtocolError:
            return
        assert isinstance(out, dict)

    @FUZZ
    @given(data=st.data())
    def test_mutated_valid_frames_parse_or_raise_typed(self, data):
        body = bytearray(VALID_FRAME)
        kind = data.draw(st.sampled_from(["flip", "truncate", "splice",
                                          "insert"]))
        if kind == "flip":
            i = data.draw(st.integers(0, len(body) - 1))
            body[i] ^= data.draw(st.integers(1, 255))
        elif kind == "truncate":
            body = body[:data.draw(st.integers(0, len(body) - 1))]
        elif kind == "splice":
            cut = data.draw(st.integers(1, len(body) - 1))
            body = body[cut:] + body[:cut]
        else:
            i = data.draw(st.integers(0, len(body)))
            body[i:i] = data.draw(st.binary(min_size=1, max_size=16))
        try:
            out = decode_line(bytes(body))
        except ProtocolError:
            return
        assert isinstance(out, dict)

    def test_oversized_frames_are_rejected_typed(self):
        with pytest.raises(ProtocolError, match="frame limit"):
            decode_line(b"x" * (MAX_LINE_BYTES + 1))


class TestFromDictTotal:
    @FUZZ
    @given(value=json_values)
    def test_arbitrary_json_values_never_escape_untyped(self, value):
        try:
            request = ScheduleRequest.from_dict(value)
        except ProtocolError:
            return
        assert isinstance(request, ScheduleRequest)

    @FUZZ
    @given(data=st.data())
    def test_damaged_valid_requests_never_escape_untyped(self, data):
        payload = json.loads(json.dumps(VALID_REQUEST_DICT))
        key = data.draw(st.sampled_from(sorted(payload)))
        action = data.draw(st.sampled_from(["drop", "replace", "add"]))
        if action == "drop":
            del payload[key]
        elif action == "replace":
            payload[key] = data.draw(json_values)
        else:
            payload[data.draw(st.text(min_size=1, max_size=12))] = \
                data.draw(json_values)
        try:
            request = ScheduleRequest.from_dict(payload)
        except ProtocolError:
            return
        # Benign damage (e.g. replacing a field with an equal value, or
        # re-adding an existing key) may still parse — that must yield a
        # real request, not a half-built object.
        assert isinstance(request, ScheduleRequest)
        assert request.fingerprint()

    def test_the_unmutated_request_round_trips(self):
        request = ScheduleRequest.from_dict(VALID_REQUEST_DICT)
        again = ScheduleRequest.from_dict(request.to_dict())
        assert again.fingerprint() == request.fingerprint()
