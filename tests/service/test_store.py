"""Result-store tests: TTL with a stepped clock, LRU eviction, stats."""

from __future__ import annotations

import threading

import pytest

from repro.service.store import ResultStore


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture()
def clock():
    return FakeClock()


class TestBasics:
    def test_put_get_round_trip(self, clock):
        store = ResultStore(clock=clock)
        store.put("a", {"v": 1})
        assert store.get("a") == {"v": 1}
        assert "a" in store and len(store) == 1

    def test_missing_key_is_a_miss(self, clock):
        store = ResultStore(clock=clock)
        assert store.get("nope") is None
        assert store.stats().misses == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResultStore(ttl=0)
        with pytest.raises(ValueError):
            ResultStore(max_entries=0)


class TestTTL:
    def test_entries_expire(self, clock):
        store = ResultStore(ttl=10.0, clock=clock)
        store.put("a", {"v": 1})
        clock.advance(10.0)
        assert store.get("a") == {"v": 1}  # exactly at TTL: still alive
        clock.advance(0.1)
        assert store.get("a") is None
        assert store.stats().expirations == 1
        assert "a" not in store

    def test_put_refreshes_the_clock(self, clock):
        store = ResultStore(ttl=10.0, clock=clock)
        store.put("a", {"v": 1})
        clock.advance(9.0)
        store.put("a", {"v": 2})
        clock.advance(9.0)
        assert store.get("a") == {"v": 2}

    def test_ttl_none_never_expires(self, clock):
        store = ResultStore(ttl=None, clock=clock)
        store.put("a", {"v": 1})
        clock.advance(1e9)
        assert store.get("a") == {"v": 1}
        assert store.purge() == 0

    def test_purge_drops_all_expired(self, clock):
        store = ResultStore(ttl=5.0, clock=clock)
        for key in "abc":
            store.put(key, {})
        clock.advance(6.0)
        store.put("d", {})
        assert store.purge() == 3
        assert len(store) == 1


class TestLRU:
    def test_capacity_evicts_least_recently_used(self, clock):
        store = ResultStore(ttl=None, max_entries=2, clock=clock)
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        store.get("a")               # b is now the LRU entry
        store.put("c", {"v": 3})
        assert store.get("b") is None
        assert store.get("a") == {"v": 1}
        assert store.stats().evictions == 1


class TestStats:
    def test_hit_rate(self, clock):
        store = ResultStore(clock=clock)
        store.put("a", {})
        store.get("a")
        store.get("a")
        store.get("x")
        s = store.stats()
        assert (s.hits, s.misses) == (2, 1)
        assert s.hit_rate == pytest.approx(2 / 3)

    def test_clear_keeps_counters(self, clock):
        store = ResultStore(clock=clock)
        store.put("a", {})
        store.get("a")
        store.clear()
        assert len(store) == 0
        assert store.stats().hits == 1


class TestThreadSafety:
    def test_concurrent_put_get(self):
        store = ResultStore(ttl=None, max_entries=64)
        errors = []

        def hammer(tid: int) -> None:
            try:
                for i in range(200):
                    key = f"k{(tid * 7 + i) % 32}"
                    store.put(key, {"tid": tid, "i": i})
                    store.get(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(store) <= 64
