"""Integration tests for the self-healing tier outside the chaos harness.

Covers the pieces with their own contracts: the client's transparent
reconnect-and-resubmit (regression for the died-between-submit-and-reply
fault), typed startup failures from :func:`running_service`, priority-
aware load shedding at the queue, store integrity digests, and the
status-protocol round trip of the new supervisor/WAL fields.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import threading

import pytest

from repro.chaos import ChaosProxy
from repro.service import (
    BackpressureError,
    Job,
    JobQueue,
    ScheduleRequest,
    ServiceClient,
    ServiceConfig,
    ServiceStartupError,
    ServiceStatus,
    execute_request,
    running_service,
)
from repro.service.store import ResultStore
from repro.topology.irregular import random_irregular_topology


def fast_config(**overrides) -> ServiceConfig:
    defaults = dict(port=0, workers=2, batch_window=0.01, max_batch=8)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def small_request(seed: int = 21) -> ScheduleRequest:
    topo = random_irregular_topology(8, seed=11, name="heal8")
    return ScheduleRequest.build(topo, clusters=4, method="tabu", seed=seed)


def canon(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestClientReconnect:
    """Regression: the connection dies between submit and reply."""

    def test_client_heals_a_dropped_reply_byte_identically(self):
        request = small_request()
        with running_service(fast_config()) as service:
            host, port = service.address

            def drop_first_submit_reply(conn: int, frame: int) -> str:
                return "drop" if (conn == 0 and frame == 1) else "forward"

            with ChaosProxy(host, port,
                            reply_plan=drop_first_submit_reply) as proxy:
                with ServiceClient(*proxy.address, retries=2,
                                   rng=random.Random(3)) as client:
                    client.ping()                      # conn 0, frame 0
                    reply = client.submit(request)     # reply dropped once
                assert proxy.faults_injected == 1
        assert reply["ok"]
        assert canon(reply["result"]) == canon(
            execute_request(request.to_dict()))

    def test_without_retries_the_drop_surfaces_as_a_connection_error(self):
        request = small_request()
        with running_service(fast_config()) as service:
            host, port = service.address

            def drop_every_reply(conn: int, frame: int) -> str:
                return "drop"

            with ChaosProxy(host, port,
                            reply_plan=drop_every_reply) as proxy:
                with ServiceClient(*proxy.address, retries=0,
                                   timeout=10.0) as client:
                    with pytest.raises((ConnectionError, OSError)):
                        client.submit(request)

    def test_shutdown_is_never_retried_but_ping_is(self):
        accepts = []
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(0.1)
        host, port = listener.getsockname()[:2]
        stop = threading.Event()

        def slam_the_door():
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                accepts.append(1)
                conn.close()           # hang up before any reply

        thread = threading.Thread(target=slam_the_door, daemon=True)
        thread.start()
        try:
            with ServiceClient(host, port, retries=2, timeout=5.0,
                               rng=random.Random(1)) as client:
                with pytest.raises(ConnectionError):
                    client.ping()
            ping_attempts = len(accepts)
            accepts.clear()
            with ServiceClient(host, port, retries=2, timeout=5.0) as client:
                with pytest.raises(ConnectionError):
                    client.shutdown()
            shutdown_attempts = len(accepts)
        finally:
            stop.set()
            thread.join(timeout=5.0)
            listener.close()
        assert ping_attempts == 3      # retries + 1
        assert shutdown_attempts == 1  # never replayed


class TestStartupFailure:
    def test_bind_conflict_raises_a_typed_startup_error(self):
        blocker = socket.create_server(("127.0.0.1", 0))
        try:
            _, taken_port = blocker.getsockname()[:2]
            with pytest.raises(ServiceStartupError, match="failed to start"):
                with running_service(fast_config(port=taken_port)):
                    pass   # pragma: no cover - never reached
        finally:
            blocker.close()


class TestLoadShedding:
    @staticmethod
    def job(priority: int, tag: str) -> Job:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        return Job(request=None, payload={"tag": tag}, fingerprint=tag,
                   future=future, priority=priority)

    def test_a_higher_priority_job_evicts_the_lowest_youngest(self):
        async def _go():
            queue = JobQueue(max_pending=3)
            queue.put_nowait(self.job(0, "old-low"))
            queue.put_nowait(self.job(1, "mid"))
            queue.put_nowait(self.job(0, "young-low"))
            victim = queue.put_nowait(self.job(2, "urgent"), shed=True)
            return victim, queue

        victim, queue = asyncio.run(_go())
        # Lowest priority loses; within priority 0 the youngest does.
        assert victim is not None and victim.fingerprint == "young-low"
        assert queue.depth == 3
        remaining = {job.fingerprint
                     for _, _, job in queue._queue._queue}
        assert remaining == {"old-low", "mid", "urgent"}

    def test_no_strictly_lower_job_means_backpressure_for_the_newcomer(self):
        async def _go():
            queue = JobQueue(max_pending=2)
            queue.put_nowait(self.job(5, "a"))
            queue.put_nowait(self.job(5, "b"))
            with pytest.raises(BackpressureError):
                queue.put_nowait(self.job(5, "c"), shed=True)
            with pytest.raises(BackpressureError):
                queue.put_nowait(self.job(1, "d"), shed=True)
            return queue.depth

        assert asyncio.run(_go()) == 2

    def test_shed_disabled_keeps_the_historical_backpressure(self):
        async def _go():
            queue = JobQueue(max_pending=1)
            queue.put_nowait(self.job(0, "a"))
            with pytest.raises(BackpressureError):
                queue.put_nowait(self.job(9, "b"))

        asyncio.run(_go())


class TestStoreIntegrity:
    def test_corrupted_entries_are_dropped_not_served(self):
        store = ResultStore()
        store.put("fp", {"f_g": 1.25, "partition": [0, 1]})
        with store._lock:
            store._entries["fp"][1]["f_g"] = -999.0   # bit-flip the value
        assert store.get("fp") is None
        assert store.stats().corruptions == 1
        assert store.get("fp") is None                # gone, not resurrected

    def test_intact_entries_round_trip_with_zero_corruptions(self):
        store = ResultStore()
        store.put("fp", {"f_g": 1.25})
        assert store.get("fp") == {"f_g": 1.25}
        assert store.stats().corruptions == 0


class TestStatusRoundTrip:
    def test_supervisor_and_wal_fields_cross_the_wire(self, tmp_path):
        config = fast_config(wal_path=tmp_path / "svc.wal",
                             request_deadline=30.0)
        with running_service(config) as service:
            with ServiceClient(*service.address) as client:
                status = client.status()
        assert status.supervisor is not None
        assert status.supervisor["breaker"]["state"] == "closed"
        assert status.supervisor["deadline_seconds"] == 30.0
        assert status.wal is not None and status.wal["pending"] == 0
        # And the dict form re-parses to the same structure.
        again = ServiceStatus.from_dict(status.to_dict())
        assert again.supervisor == status.supervisor
        assert again.wal == status.wal

    def test_legacy_status_payloads_still_parse(self):
        with running_service(fast_config()) as service:
            status = service.status()
        d = status.to_dict()
        d.pop("supervisor", None)
        d.pop("wal", None)
        legacy = ServiceStatus.from_dict(d)
        assert legacy.supervisor is None and legacy.wal is None
