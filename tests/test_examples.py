"""Smoke tests: every shipped example must run and print its conclusions.

Examples are the de-facto acceptance tests of the public API; they are
executed in-process (importlib) so coverage tools see them and failures
carry full tracebacks.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "scheduled mapping (OP)" in out
        assert "C_c" in out and "accepted" in out

    def test_video_on_demand(self, capsys):
        out = run_example("video_on_demand", capsys)
        assert "vod-news" in out and "analytics" in out
        assert "scheduled" in out and "random" in out

    def test_heterogeneous_datacenter(self, capsys):
        out = run_example("heterogeneous_datacenter", capsys)
        assert "render farm" in out and "stream pipeline" in out
        assert "computation" in out and "communication" in out

    def test_topology_study(self, capsys):
        out = run_example("topology_study", capsys)
        assert "four rings 4x6" in out
        assert "hypercube 4d" in out

    def test_online_cluster(self, capsys):
        out = run_example("online_cluster", capsys)
        assert "rebalance" in out
        assert "fragmentation" in out

    def test_all_examples_covered(self):
        """Every example file on disk has a smoke test above."""
        files = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        tested = {"quickstart", "video_on_demand", "heterogeneous_datacenter",
                  "topology_study", "online_cluster"}
        assert files == tested, f"untested examples: {files - tested}"
