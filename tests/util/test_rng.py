"""Tests for repro.util.rng: determinism and independence of derived streams."""

import numpy as np
import pytest

from repro.util.rng import as_rng, derive_seed, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_rng(123).integers(0, 1 << 30, size=10)
        b = as_rng(123).integers(0, 1 << 30, size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 1 << 30, size=10)
        b = as_rng(2).integers(0, 1 << 30, size=10)
        assert (a != b).any()

    def test_generator_passthrough(self):
        g = np.random.default_rng(5)
        assert as_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(9)
        assert isinstance(as_rng(ss), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            as_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_reproducible(self):
        a = [g.integers(0, 1 << 30) for g in spawn_rngs(77, 4)]
        b = [g.integers(0, 1 << 30) for g in spawn_rngs(77, 4)]
        assert a == b

    def test_streams_differ(self):
        vals = [int(g.integers(0, 1 << 62)) for g in spawn_rngs(3, 8)]
        assert len(set(vals)) == len(vals)

    def test_spawn_from_generator(self):
        g = np.random.default_rng(11)
        children = spawn_rngs(g, 3)
        assert len(children) == 3
        vals = [int(c.integers(0, 1 << 62)) for c in children]
        assert len(set(vals)) == 3


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, "a", 1) == derive_seed(5, "a", 1)

    def test_key_sensitivity(self):
        assert derive_seed(5, "a", 1) != derive_seed(5, "a", 2)
        assert derive_seed(5, "a") != derive_seed(5, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(5, "x") != derive_seed(6, "x")

    def test_none_seed_ok(self):
        assert derive_seed(None, "x") == derive_seed(0, "x")

    def test_non_negative_int(self):
        s = derive_seed(123456, "component", 42)
        assert isinstance(s, int) and s >= 0
