"""Tests for the ASCII plotting helpers."""

import math

import pytest

from repro.util.asciiplot import bar_chart, line_plot


class TestLinePlot:
    def test_basic_structure(self):
        out = line_plot({"a": ([0, 1, 2], [0.0, 1.0, 2.0])},
                        title="demo", x_label="x", y_label="y")
        assert "demo" in out
        assert "legend: o a" in out
        assert "x" in out.splitlines()[-2]

    def test_marker_placement_corners(self):
        out = line_plot({"a": ([0, 10], [0.0, 1.0])}, width=20, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        # Lowest point bottom-left, highest point top-right.
        assert rows[0].rstrip().endswith("o")
        body = rows[-1].split("|", 1)[1]
        assert body.startswith("o")

    def test_two_series_two_markers(self):
        out = line_plot({
            "first": ([0, 1], [1.0, 2.0]),
            "second": ([0, 1], [3.0, 4.0]),
        })
        assert "o first" in out and "x second" in out
        assert "x" in out.split("legend")[0]

    def test_nan_points_skipped(self):
        out = line_plot({"a": ([0, 1, 2], [1.0, float("nan"), 3.0])})
        assert "legend" in out

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="no finite"):
            line_plot({"a": ([0], [float("nan")])})

    def test_log_scale_requires_positive(self):
        out = line_plot({"a": ([0, 1], [0.0, 10.0])}, y_log=True)
        # y=0 dropped under log scale, y=10 plotted.
        assert "legend" in out

    def test_log_scale_ticks_are_raw_values(self):
        out = line_plot({"a": ([0, 1], [1.0, 1000.0])}, y_log=True, height=6)
        assert "1.0e+03" in out or "1000" in out

    def test_constant_series_ok(self):
        out = line_plot({"a": ([0, 1], [5.0, 5.0])})
        assert "legend" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": ([0, 1], [1.0])})
        with pytest.raises(ValueError):
            line_plot({"a": ([0], [1.0])}, width=2)


class TestBarChart:
    def test_basic(self):
        out = bar_chart({"S1": 0.5, "S2": 1.0}, width=10, lo=0, hi=1)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_nan_marked(self):
        out = bar_chart({"S1": float("nan")})
        assert "(undefined)" in out

    def test_clamps_out_of_range(self):
        out = bar_chart({"a": 5.0}, width=10, lo=0, hi=1)
        assert out.count("#") == 10

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="T").startswith("T")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})
