"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_square_matrix,
    check_symmetric,
)


class TestScalarChecks:
    def test_positive_ok(self):
        check_positive(0.5, "x")

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0, "x")

    def test_non_negative_ok(self):
        check_non_negative(0, "x")

    def test_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative(-1e-9, "x")

    def test_in_range(self):
        check_in_range(5, "x", 0, 10)
        with pytest.raises(ValueError):
            check_in_range(11, "x", 0, 10)

    def test_probability(self):
        check_probability(0.0, "p")
        check_probability(1.0, "p")
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_nan_rejected_by_positive(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")


class TestMatrixChecks:
    def test_square_ok(self):
        m = check_square_matrix([[1, 2], [3, 4]], "m")
        assert m.shape == (2, 2) and m.dtype == float

    def test_square_rejects_rect(self):
        with pytest.raises(ValueError):
            check_square_matrix(np.zeros((2, 3)), "m")

    def test_square_rejects_1d(self):
        with pytest.raises(ValueError):
            check_square_matrix([1, 2, 3], "m")

    def test_symmetric_ok(self):
        check_symmetric([[0, 1], [1, 0]], "m")

    def test_symmetric_rejects(self):
        with pytest.raises(ValueError):
            check_symmetric([[0, 1], [2, 0]], "m")

    def test_symmetric_atol(self):
        m = [[0, 1.0], [1.0 + 1e-12, 0]]
        check_symmetric(m, "m", atol=1e-9)
