"""Tests for repro.util.reporting."""

import pytest

from repro.util.reporting import Table, format_float


class TestFormatFloat:
    def test_string_passthrough(self):
        assert format_float("abc") == "abc"

    def test_none(self):
        assert format_float(None) == "-"

    def test_int(self):
        assert format_float(42) == "42"

    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_nan_inf(self):
        assert format_float(float("nan")) == "nan"
        assert format_float(float("inf")) == "inf"
        assert format_float(float("-inf")) == "-inf"

    def test_small_uses_scientific(self):
        assert "e" in format_float(1.23e-9)

    def test_typical(self):
        assert format_float(0.25556, digits=4) == "0.2556"

    def test_bool(self):
        assert format_float(True) == "True"


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_render_alignment(self):
        t = Table(["name", "value"], title="demo")
        t.add_row(["x", 1.5])
        t.add_row(["longer", 0.25])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        # All data lines have equal padded width structure.
        assert len(lines) == 5

    def test_str(self):
        t = Table(["a"])
        t.add_row([1])
        assert "a" in str(t)
