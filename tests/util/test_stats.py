"""Tests for repro.util.stats against closed-form values and numpy."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import RunningStats, pearson, spearman, summarize

finite_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        y = 0.5 * x + rng.normal(size=50)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_degenerate_constant(self):
        assert math.isnan(pearson([1, 1, 1], [1, 2, 3]))

    def test_degenerate_short(self):
        assert math.isnan(pearson([1.0], [2.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    @given(st.lists(finite_floats, min_size=3, max_size=30))
    def test_self_correlation_is_one_or_nan(self, xs):
        r = pearson(xs, xs)
        assert math.isnan(r) or r == pytest.approx(1.0)

    @given(st.lists(st.tuples(finite_floats, finite_floats),
                    min_size=3, max_size=30))
    def test_bounded(self, pairs):
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        r = pearson(x, y)
        assert math.isnan(r) or -1.0000001 <= r <= 1.0000001


class TestSpearman:
    def test_monotone_is_one(self):
        assert spearman([1, 2, 3, 4], [1, 4, 9, 16]) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        assert spearman([1, 2, 3, 4], [8, 4, 2, 1]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        r = spearman([1, 1, 2, 3], [1, 1, 2, 3])
        assert r == pytest.approx(1.0)


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s["n"] == 0 and math.isnan(s["mean"])

    def test_single(self):
        s = summarize([4.0])
        assert s == {"n": 1, "mean": 4.0, "std": 0.0, "min": 4.0,
                     "max": 4.0, "median": 4.0}

    def test_matches_numpy(self):
        xs = [3.0, 1.0, 4.0, 1.0, 5.0]
        s = summarize(xs)
        assert s["mean"] == pytest.approx(np.mean(xs))
        assert s["std"] == pytest.approx(np.std(xs, ddof=1))
        assert s["median"] == pytest.approx(np.median(xs))


class TestRunningStats:
    def test_empty(self):
        rs = RunningStats()
        assert rs.count == 0 and math.isnan(rs.mean)

    def test_matches_numpy(self):
        xs = np.random.default_rng(1).normal(5, 2, size=200)
        rs = RunningStats()
        for x in xs:
            rs.add(float(x))
        assert rs.mean == pytest.approx(xs.mean())
        assert rs.std == pytest.approx(xs.std(ddof=1))
        assert rs.min == pytest.approx(xs.min())
        assert rs.max == pytest.approx(xs.max())

    def test_merge_equals_combined(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=37)
        b = rng.normal(size=53)
        ra, rb, rc = RunningStats(), RunningStats(), RunningStats()
        for x in a:
            ra.add(float(x))
            rc.add(float(x))
        for x in b:
            rb.add(float(x))
            rc.add(float(x))
        ra.merge(rb)
        assert ra.count == rc.count
        assert ra.mean == pytest.approx(rc.mean)
        assert ra.variance == pytest.approx(rc.variance)

    def test_merge_with_empty(self):
        ra, rb = RunningStats(), RunningStats()
        ra.add(1.0)
        ra.merge(rb)
        assert ra.count == 1
        rb.merge(ra)
        assert rb.count == 1 and rb.mean == 1.0

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_variance_non_negative(self, xs):
        rs = RunningStats()
        for x in xs:
            rs.add(x)
        assert rs.variance >= -1e-6
