"""Tests for the reservoir sampler and percentile reporting."""

import math

import numpy as np
import pytest

from repro.util.stats import ReservoirSampler


class TestReservoirSampler:
    def test_small_stream_kept_exactly(self):
        rs = ReservoirSampler(capacity=100, seed=0)
        for x in range(50):
            rs.add(float(x))
        assert rs.sample_size == 50
        assert rs.percentile(50) == pytest.approx(24.5)
        assert rs.percentile(0) == 0.0
        assert rs.percentile(100) == 49.0

    def test_capacity_bounded(self):
        rs = ReservoirSampler(capacity=64, seed=1)
        for x in range(10_000):
            rs.add(float(x))
        assert rs.sample_size == 64
        assert rs.count == 10_000

    def test_uniformity_of_sample(self):
        # Sampled median of a uniform stream should track the true median.
        rs = ReservoirSampler(capacity=512, seed=2)
        for x in range(20_000):
            rs.add(float(x))
        assert rs.percentile(50) == pytest.approx(10_000, rel=0.15)

    def test_empty_percentile_nan(self):
        rs = ReservoirSampler()
        assert math.isnan(rs.percentile(50))

    def test_empty_percentiles_dict_is_explicitly_empty(self):
        # Regression: an empty reservoir used to emit NaN-valued entries,
        # which are not valid JSON and broke downstream rendering.
        rs = ReservoirSampler()
        assert rs.percentiles() == {}
        assert rs.percentiles(qs=(10, 50, 90)) == {}
        with pytest.raises(ValueError):
            rs.percentiles(qs=(101,))

    def test_empty_histogram_snapshot_is_explicitly_empty(self):
        from repro.obs.metrics import Histogram

        h = Histogram("latency")
        assert h.snapshot() == {"count": 0}
        h.observe(float("nan"))  # ignored, still empty
        assert h.snapshot() == {"count": 0}
        h.observe(3.0)
        snap = h.snapshot()
        assert snap["count"] == 1 and snap["p50"] == 3.0

    def test_percentiles_dict(self):
        rs = ReservoirSampler(seed=3)
        for x in np.linspace(0, 100, 101):
            rs.add(float(x))
        p = rs.percentiles()
        assert set(p) == {"p50", "p95", "p99"}
        assert p["p50"] == pytest.approx(50.0)
        assert p["p95"] == pytest.approx(95.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReservoirSampler(capacity=0)
        with pytest.raises(ValueError):
            ReservoirSampler().percentile(101)

    def test_deterministic(self):
        def run():
            rs = ReservoirSampler(capacity=16, seed=9)
            for x in range(1000):
                rs.add(float(x))
            return rs.percentiles()

        assert run() == run()


class TestSimulatorPercentiles:
    def test_result_carries_percentiles(self, rtable16, topo16):
        from repro.simulation.config import SimulationConfig
        from repro.simulation.network import WormholeNetworkSimulator
        from repro.simulation.traffic import UniformTraffic

        cfg = SimulationConfig(warmup_cycles=100, measure_cycles=600, seed=4)
        sim = WormholeNetworkSimulator(rtable16, UniformTraffic(topo16),
                                       0.01, cfg)
        res = sim.run()
        p = res.latency_percentiles
        assert p is not None
        assert p["p50"] <= p["p95"] <= p["p99"]
        # Median sampled latency brackets the running mean loosely.
        assert 0.3 * res.avg_latency <= p["p50"] <= 2.0 * res.avg_latency
