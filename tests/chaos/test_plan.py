"""Unit tests for fault plans: seeded, deterministic, validated."""

from __future__ import annotations

import pytest

from repro.chaos.plan import (
    EXECUTOR_FAULTS,
    FaultAction,
    crash_at,
    error_at,
    hang_at,
    mutate_frame,
    random_plan,
    slow_at,
    wire_action,
)


class TestFaultAction:
    def test_valid_kinds_only(self):
        for kind in EXECUTOR_FAULTS:
            assert FaultAction(kind).kind == kind
        with pytest.raises(ValueError, match="kind"):
            FaultAction("meltdown")

    def test_negative_delay_is_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            FaultAction("hang", delay=-1.0)

    def test_builders_key_on_batch_numbers(self):
        assert set(crash_at(1, 3)) == {1, 3}
        assert hang_at(2, delay=5.0)[2] == FaultAction("hang", delay=5.0)
        assert error_at(4)[4].kind == "error"
        assert slow_at(5)[5].kind == "slow"


class TestRandomPlan:
    def test_same_seed_same_plan(self):
        a = random_plan(7, batches=50)
        b = random_plan(7, batches=50)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_plan(7, batches=50) != random_plan(8, batches=50)

    def test_rate_bounds_the_plan_size(self):
        assert random_plan(1, batches=100, rate=0.0) == {}
        assert len(random_plan(1, batches=100, rate=1.0)) == 100


class TestWireAction:
    def test_pure_function_of_the_triple(self):
        for conn in range(3):
            for frame in range(10):
                first = wire_action(9, conn, frame, drop=0.5)
                again = wire_action(9, conn, frame, drop=0.5)
                assert first == again

    def test_zero_probabilities_always_forward(self):
        assert all(wire_action(1, c, f) == "forward"
                   for c in range(4) for f in range(25))

    def test_full_probability_never_forwards(self):
        actions = {wire_action(1, c, f, tear=0.3, drop=0.3, garbage=0.4)
                   for c in range(4) for f in range(25)}
        assert "forward" not in actions
        assert actions <= {"tear", "drop", "garbage"}

    def test_probabilities_are_validated(self):
        with pytest.raises(ValueError, match="probabilities"):
            wire_action(1, 0, 0, tear=1.5)
        with pytest.raises(ValueError, match="<= 1"):
            wire_action(1, 0, 0, tear=0.6, drop=0.6)


class TestMutateFrame:
    FRAME = b'{"op":"submit","request":{"kind":"x","seed":3}}\n'

    def test_deterministic_per_seed_and_index(self):
        for i in range(30):
            assert mutate_frame(self.FRAME, 5, i) \
                == mutate_frame(self.FRAME, 5, i)

    def test_never_returns_the_frame_unchanged(self):
        for i in range(60):
            assert mutate_frame(self.FRAME, 5, i) != self.FRAME

    def test_always_newline_terminated(self):
        for i in range(60):
            assert mutate_frame(self.FRAME, 5, i).endswith(b"\n")

    def test_empty_input_still_yields_a_frame(self):
        assert mutate_frame(b"", 5, 0).endswith(b"\n")
