"""Harness tests: injectors behave, scenarios hold, the registry is sane.

The full eight-scenario sweep runs in the CI ``chaos-smoke`` job (via
``repro chaos``); here the tier-1 suite pins the injector mechanics and a
representative scenario pair so a regression fails fast and close to its
cause.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    SCENARIOS,
    ChaoticExecutor,
    error_at,
    kill_workers,
    render_report,
    run_scenarios,
    slow_at,
)
from repro.parallel import WorkerPool
from repro.service import ScheduleRequest, execute_request
from repro.topology.irregular import random_irregular_topology


@pytest.fixture(scope="module")
def payloads():
    topo = random_irregular_topology(8, seed=11, name="chaos-test8")
    return [ScheduleRequest.build(topo, clusters=4, method="tabu",
                                  seed=s).to_dict() for s in (1, 2)]


class TestChaoticExecutor:
    def test_error_fault_fires_exactly_once_per_seq(self, tmp_path,
                                                    payloads):
        executor = ChaoticExecutor(error_at(1), str(tmp_path / "latch"))
        with pytest.raises(RuntimeError, match="chaos"):
            executor(1, payloads, False)
        # Same seq again: the latch is claimed, the batch runs clean.
        results = executor(1, payloads, False)
        assert [r["seed"] for r in results] == [1, 2]

    def test_unplanned_seqs_execute_normally(self, tmp_path, payloads):
        executor = ChaoticExecutor(error_at(1), str(tmp_path / "latch"))
        results = executor(2, payloads, False)
        assert results == [execute_request(p) for p in payloads]

    def test_once_false_fires_every_attempt(self, tmp_path, payloads):
        executor = ChaoticExecutor(error_at(1), str(tmp_path / "latch"),
                                   once=False)
        for _ in range(3):
            with pytest.raises(RuntimeError, match="chaos"):
                executor(1, payloads, False)

    def test_slow_fault_still_completes_correctly(self, tmp_path, payloads):
        executor = ChaoticExecutor(slow_at(1, delay=0.05),
                                   str(tmp_path / "latch"))
        assert executor(1, payloads, False) \
            == [execute_request(p) for p in payloads]

    def test_executor_is_picklable(self, tmp_path):
        import pickle

        executor = ChaoticExecutor(error_at(1, 2), str(tmp_path / "latch"))
        clone = pickle.loads(pickle.dumps(executor))
        assert clone.plan == executor.plan
        assert clone.latch_dir == executor.latch_dir


class TestKillWorkers:
    def test_inactive_pool_kills_nothing(self):
        pool = WorkerPool(workers=2)
        try:
            assert kill_workers(pool) == 0
        finally:
            pool.terminate()


class TestRegistry:
    def test_all_eight_fault_classes_are_registered(self):
        assert set(SCENARIOS) == {
            "worker_crash", "worker_hang", "crash_loop", "torn_frames",
            "dropped_connection", "store_corruption", "pool_death",
            "wal_replay",
        }

    def test_unknown_scenario_fails_before_running_anything(self, tmp_path):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenarios(["no_such_fault"], workdir=tmp_path)


class TestScenarios:
    """A representative pair inline; the full sweep runs in chaos-smoke."""

    def test_worker_crash_and_wal_replay_hold_the_invariant(self, tmp_path):
        results = run_scenarios(["worker_crash", "wal_replay"], seed=2,
                                workdir=tmp_path)
        report = render_report(results)
        assert all(r.invariant_ok for r in results), report
        by_name = {r.name: r for r in results}
        crash = by_name["worker_crash"]
        assert crash.stats["restarts"] >= 1
        assert all(o.byte_identical for o in crash.outcomes)
        replay = by_name["wal_replay"]
        assert replay.stats["replayed"] == 3
        assert "2/2 scenarios hold the invariant" in report

    def test_results_serialize_for_the_json_cli_path(self, tmp_path):
        import json

        results = run_scenarios(["store_corruption"], seed=4,
                                workdir=tmp_path)
        blob = json.dumps([r.to_dict() for r in results])
        parsed = json.loads(blob)
        assert parsed[0]["name"] == "store_corruption"
        assert parsed[0]["invariant_ok"] is True
