"""Tests for the deterministic chaos harness (repro.chaos)."""
