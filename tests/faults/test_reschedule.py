"""Tests for degraded-mode scheduling: repair, reschedule, per-component."""

import pytest

from repro.core.mapping import Workload
from repro.core.scheduler import CommunicationAwareScheduler
from repro.faults.degrade import degrade
from repro.faults.model import FaultScenario, sample_fault_scenarios
from repro.faults.reschedule import (
    compare_repair_strategies,
    evaluate_partition,
    full_reschedule,
    repair_schedule,
    schedule_degraded,
)
from repro.topology.designed import star_topology


@pytest.fixture(scope="module")
def baseline8(topo8, workload8):
    """The healthy-network OP mapping on the 8-switch fixture."""
    return CommunicationAwareScheduler(topo8).schedule(workload8, seed=1)


class TestRepair:
    def test_repair_never_below_degraded(self, topo8, workload8, baseline8):
        # Acceptance: for every survivable scenario, warm-start repair
        # must end at C_c >= the degraded (stale) mapping's C_c.
        for link in topo8.links:
            net = degrade(topo8, FaultScenario(links=[link]))
            if not net.full_machine:
                continue
            degraded_c_c = evaluate_partition(net, baseline8.partition)["C_c"]
            repaired = repair_schedule(net, workload8, baseline8.partition,
                                       seed=1)
            assert repaired.c_c >= degraded_c_c - 1e-9

    def test_repair_beats_degraded_across_sampled_k2(self, topo16,
                                                     workload16):
        baseline = CommunicationAwareScheduler(topo16).schedule(
            workload16, seed=1
        )
        scens = sample_fault_scenarios(topo16, num_faults=2, count=4, seed=5)
        checked = 0
        for s in scens:
            net = degrade(topo16, s)
            if not net.full_machine:
                continue
            degraded_c_c = evaluate_partition(net, baseline.partition)["C_c"]
            repaired = repair_schedule(net, workload16, baseline.partition,
                                       seed=1)
            assert repaired.c_c >= degraded_c_c - 1e-9
            checked += 1
        assert checked > 0

    def test_full_reschedule_never_below_repair_quality_floor(
            self, topo8, workload8, baseline8):
        net = degrade(topo8, FaultScenario(links=[topo8.links[0]]))
        if not net.full_machine:
            pytest.skip("fixture link is a bridge")
        degraded_c_c = evaluate_partition(net, baseline8.partition)["C_c"]
        full = full_reschedule(net, workload8,
                               old_partition=baseline8.partition,
                               seed=1, restarts=3)
        assert full.c_c >= degraded_c_c - 1e-9

    def test_compare_reports_gap_and_speedup(self, topo8, workload8,
                                             baseline8):
        net = degrade(topo8, FaultScenario(links=[topo8.links[0]]))
        if not net.full_machine:
            pytest.skip("fixture link is a bridge")
        cmp = compare_repair_strategies(net, workload8, baseline8.partition,
                                        seed=1, full_restarts=3)
        assert cmp.repaired.c_c >= cmp.degraded_c_c - 1e-9
        assert cmp.rescheduled.c_c >= cmp.degraded_c_c - 1e-9
        assert cmp.repair_gap == pytest.approx(
            cmp.rescheduled.c_c - cmp.repaired.c_c
        )
        assert cmp.speedup > 0

    def test_evaluate_requires_full_machine(self, workload8, baseline8):
        topo = star_topology(5)
        net = degrade(topo, FaultScenario(links=[(0, 1)]))
        with pytest.raises(ValueError):
            evaluate_partition(net, baseline8.partition)


class TestDegradedMode:
    def test_partition_yields_component_schedule_not_exception(self):
        # Acceptance: a partitioning fault must degrade to per-component
        # scheduling, never raise.
        topo = star_topology(5)
        workload = Workload.uniform(2, 8)
        baseline = CommunicationAwareScheduler(topo).schedule(workload,
                                                              seed=1)
        net = degrade(topo, FaultScenario(links=[(0, 1)]))
        assert not net.connected
        plan = schedule_degraded(net, workload,
                                 old_partition=baseline.partition, seed=1)
        assert plan.placements  # one entry per cluster
        assert len(plan.placements) == workload.num_clusters
        # Hub component (4 switches x 4 hosts = 16 hosts) fits both
        # 8-process clusters.
        assert plan.all_placed

    def test_capacity_loss_unplaces_clusters_gracefully(self, topo8):
        # Kill a switch: 28 hosts remain, 2x16 processes no longer fit.
        workload = Workload.uniform(2, 16)
        net = degrade(topo8, FaultScenario(switches=[0]))
        plan = schedule_degraded(net, workload, seed=1)
        assert len(plan.placed) == 1
        assert len(plan.unplaced) == 1
        assert not plan.all_placed
        assert plan.to_partition(topo8.num_switches) is None

    def test_placed_plan_round_trips_to_partition(self, topo8):
        workload = Workload.uniform(2, 12)  # fits after losing a switch
        net = degrade(topo8, FaultScenario(switches=[7]))
        plan = schedule_degraded(net, workload, seed=1)
        if plan.all_placed:
            p = plan.to_partition(topo8.num_switches)
            assert p is not None
            for placement in plan.placed:
                for s in placement.switches:
                    assert p.labels[s] == placement.cluster_index

    def test_assignment_uses_global_switch_ids(self):
        topo = star_topology(5)
        net = degrade(topo, FaultScenario(links=[(0, 1)]))
        plan = schedule_degraded(net, Workload.uniform(2, 8), seed=1)
        surviving = set(net.surviving_switches)
        for switches in plan.assignment().values():
            assert set(switches) <= surviving

    def test_deterministic_given_seed(self, topo8):
        workload = Workload.uniform(2, 12)
        net = degrade(topo8, FaultScenario(switches=[3]))
        a = schedule_degraded(net, workload, seed=9)
        b = schedule_degraded(net, workload, seed=9)
        assert a.assignment() == b.assignment()
        assert a.component_c_c == b.component_c_c
