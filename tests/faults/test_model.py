"""Tests for fault scenarios and scenario generators."""

import pytest

from repro import serialize
from repro.faults.model import (
    FaultScenario,
    sample_fault_scenarios,
    single_link_scenarios,
    single_switch_scenarios,
)


class TestFaultScenario:
    def test_normalizes_links_and_switches(self):
        s = FaultScenario(links=[(3, 1), (1, 3), (0, 2)], switches=[5, 5, 2])
        assert s.links == ((0, 2), (1, 3))
        assert s.switches == (2, 5)
        assert s.num_faults == 4

    def test_label(self):
        assert FaultScenario().label == "none"
        assert FaultScenario(links=[(0, 3)]).label == "L0-3"
        assert FaultScenario(links=[(0, 3)], switches=[5]).label == "L0-3+S5"

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            FaultScenario(links=[(2, 2)])

    def test_negative_switch_rejected(self):
        with pytest.raises(ValueError):
            FaultScenario(switches=[-1])

    def test_validate_names_missing_link(self, topo8):
        missing = FaultScenario(links=[(0, 99)])
        with pytest.raises(ValueError, match=r"0.*99"):
            missing.validate(topo8)

    def test_validate_names_missing_switch(self, topo8):
        with pytest.raises(ValueError, match="99"):
            FaultScenario(switches=[99]).validate(topo8)

    def test_validate_rejects_failing_every_switch(self, topo8):
        everything = FaultScenario(switches=range(topo8.num_switches))
        with pytest.raises(ValueError, match="all 8 switches"):
            everything.validate(topo8)

    def test_apply_keeps_ids_and_drops_links(self, topo8):
        link = topo8.links[0]
        degraded = FaultScenario(links=[link]).apply(topo8)
        assert degraded.num_switches == topo8.num_switches
        assert link not in degraded.links
        assert len(degraded.links) == len(topo8.links) - 1

    def test_apply_switch_fault_isolates_it(self, topo8):
        s = FaultScenario(switches=[0])
        degraded = s.apply(topo8)
        assert degraded.num_switches == topo8.num_switches
        assert all(0 not in l for l in degraded.links)

    def test_json_round_trip(self):
        s = FaultScenario(links=[(0, 3), (1, 2)], switches=[4], name="demo")
        assert FaultScenario.from_dict(s.to_dict()) == s

    def test_registered_with_serialize(self):
        s = FaultScenario(links=[(0, 3)])
        assert serialize.from_dict(serialize.to_dict(s)) == s


class TestGenerators:
    def test_single_link_covers_every_link(self, topo8):
        scens = single_link_scenarios(topo8)
        assert len(scens) == len(topo8.links)
        assert {s.links[0] for s in scens} == set(topo8.links)

    def test_single_switch_covers_every_switch(self, topo8):
        scens = single_switch_scenarios(topo8)
        assert [s.switches[0] for s in scens] == list(
            range(topo8.num_switches)
        )

    def test_sampling_is_deterministic(self, topo16):
        a = sample_fault_scenarios(topo16, num_faults=2, count=5, seed=3)
        b = sample_fault_scenarios(topo16, num_faults=2, count=5, seed=3)
        assert a == b

    def test_sampling_seed_changes_scenarios(self, topo16):
        a = sample_fault_scenarios(topo16, num_faults=2, count=5, seed=3)
        b = sample_fault_scenarios(topo16, num_faults=2, count=5, seed=4)
        assert a != b

    def test_sampled_scenarios_have_k_faults(self, topo16):
        for s in sample_fault_scenarios(topo16, num_faults=3, count=4,
                                        seed=1, include_switches=True):
            assert s.num_faults == 3
            s.validate(topo16)

    def test_sampled_scenarios_are_distinct(self, topo16):
        scens = sample_fault_scenarios(topo16, num_faults=2, count=8, seed=0)
        assert len(set(scens)) == len(scens)

    def test_bad_arguments_rejected(self, topo8):
        with pytest.raises(ValueError):
            sample_fault_scenarios(topo8, num_faults=0, count=1)
        with pytest.raises(ValueError):
            sample_fault_scenarios(topo8, num_faults=1, count=-1)
