"""Tests for the degraded-network view: components, routing, verification."""

import pytest

from repro.faults.degrade import degrade
from repro.faults.model import FaultScenario
from repro.topology.designed import ring_topology, star_topology


class TestHealthy:
    def test_no_faults_is_full_machine(self, topo8):
        net = degrade(topo8, FaultScenario())
        assert net.connected and net.full_machine
        assert len(net.components) == 1
        assert net.host_capacity == topo8.num_hosts
        assert net.surviving_switches == tuple(range(topo8.num_switches))

    def test_routing_and_table_work(self, topo8):
        net = degrade(topo8, FaultScenario(links=[topo8.links[0]]))
        if net.connected:
            table = net.distance_table()
            assert table.values.shape[0] == topo8.num_switches


class TestVerification:
    def test_survivable_fault_verifies_clean(self, topo16):
        net = degrade(topo16, FaultScenario(links=[topo16.links[0]]))
        report = net.verify()
        assert report.components_connected
        assert report.deadlock_free
        assert report.ok

    def test_partitioned_network_still_verifies_per_component(self):
        # Star: cutting a leaf link gives 2 components; up*/down* must
        # still cover (and stay deadlock-free on) each one.
        topo = star_topology(5)
        net = degrade(topo, FaultScenario(links=[(0, 1)]))
        assert not net.connected
        assert len(net.components) == 2
        assert net.verify().ok

    def test_invalid_scenario_raises_with_name(self, topo8):
        with pytest.raises(ValueError, match="99"):
            degrade(topo8, FaultScenario(links=[(0, 99)]))


class TestComponents:
    def test_partition_splits_components(self):
        topo = star_topology(5)  # hub 0, leaves 1..4
        net = degrade(topo, FaultScenario(links=[(0, 1)]))
        sizes = sorted(c.size for c in net.components)
        assert sizes == [1, 4]
        # Largest component first, and largest_component() agrees.
        assert net.components[0].size == 4
        assert net.largest_component() is net.components[0]

    def test_component_id_maps_round_trip(self):
        topo = star_topology(5)
        net = degrade(topo, FaultScenario(links=[(0, 2)]))
        comp = net.largest_component()
        for g in comp.switches:
            assert comp.to_global[comp.to_local[g]] == g

    def test_component_routing_covers_component(self):
        topo = ring_topology(6)
        # Two cuts split the ring into two arcs.
        net = degrade(topo, FaultScenario(links=[(0, 1), (3, 4)]))
        assert len(net.components) == 2
        for comp in net.components:
            d = comp.distance_table().values
            assert d.shape == (comp.size, comp.size)
            assert (d[d > 0] < float("inf")).all()

    def test_partitioned_global_routing_raises(self):
        topo = star_topology(5)
        net = degrade(topo, FaultScenario(links=[(0, 1)]))
        with pytest.raises(ValueError, match="partition"):
            net.routing()
        with pytest.raises(ValueError, match="partition"):
            net.distance_table()

    def test_switch_fault_reduces_capacity(self, topo8):
        net = degrade(topo8, FaultScenario(switches=[0]))
        assert net.host_capacity == topo8.num_hosts - topo8.hosts_per_switch
        assert not net.full_machine
        assert 0 not in net.surviving_switches
