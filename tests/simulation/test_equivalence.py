"""Unit tests for the statistical-equivalence checker itself.

``repro.simulation.equivalence`` is the contract that admits the vector
engine without bit-identity, so the checker gets its own evidence: the
hand-rolled Student's t machinery must match scipy (when scipy is
around), known-same sample sets must pass, shifted-mean sample sets must
fail, and the whole procedure must be deterministic — same samples in,
same verdicts out.  The engine-facing application lives in
``test_engine_equivalence.py``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.simulation.equivalence import (
    DEFAULT_ALPHA,
    check_equivalence,
    check_rank_preservation,
    mean_ci,
    student_t_cdf,
    student_t_sf,
    welch_t,
)

def _samples(rng, mean, sd, n=31):
    return list(rng.normal(mean, sd, n))


# --------------------------------------------------------------------- #
# the t machinery
# --------------------------------------------------------------------- #

def test_t_cdf_reference_values():
    # Textbook anchors: t(df=1) is Cauchy, large df approaches normal.
    assert student_t_cdf(0.0, 5) == pytest.approx(0.5)
    assert student_t_cdf(1.0, 1) == pytest.approx(0.75, abs=1e-10)
    assert student_t_cdf(-1.0, 1) == pytest.approx(0.25, abs=1e-10)
    # Symmetry and monotonicity.
    for df in (2, 7, 30, 120):
        for t in (0.3, 1.2, 2.8):
            assert student_t_cdf(t, df) + student_t_cdf(-t, df) == \
                pytest.approx(1.0, abs=1e-12)
        assert student_t_cdf(1.0, df) < student_t_cdf(2.0, df)
    # Large-df limit: standard normal quantile 1.96 -> ~0.975.
    assert student_t_cdf(1.96, 10_000) == pytest.approx(0.975, abs=1e-3)


def test_t_sf_two_sided():
    for df in (3, 29, 64):
        for t in (0.0, 0.7, 2.1, 5.0):
            two = student_t_sf(t, df)
            assert two == pytest.approx(
                2.0 * (1.0 - student_t_cdf(abs(t), df)), abs=1e-10)
    assert student_t_sf(0.0, 12) == pytest.approx(1.0)


def test_t_cdf_matches_scipy_when_available():
    scipy = pytest.importorskip("scipy.stats")
    for df in (1, 2.5, 7, 29, 57.3, 200):
        for t in (-8.0, -2.3, -0.5, 0.0, 0.1, 1.96, 4.4, 12.0):
            assert student_t_cdf(t, df) == pytest.approx(
                float(scipy.t.cdf(t, df)), abs=1e-10)


def test_welch_matches_scipy_when_available():
    scipy = pytest.importorskip("scipy.stats")
    rng = np.random.default_rng(42)
    for _ in range(8):
        xs = _samples(rng, 10.0, 2.0, 31)
        ys = _samples(rng, 10.4, 3.0, 37)
        t, _df, p = welch_t(xs, ys)
        ref = scipy.ttest_ind(xs, ys, equal_var=False)
        assert t == pytest.approx(float(ref.statistic), abs=1e-9)
        assert p == pytest.approx(float(ref.pvalue), abs=1e-9)


def test_welch_degenerate_constant_samples():
    t, _df, p = welch_t([3.0] * 10, [3.0] * 12)
    assert (t, p) == (0.0, 1.0)
    t, _df, p = welch_t([3.0] * 10, [4.0] * 12)
    assert math.isinf(t) and p == 0.0


def test_mean_ci_coverage():
    # The 99% CI should cover the true mean in roughly 99% of draws.
    rng = np.random.default_rng(7)
    hits = sum(
        lo <= 5.0 <= hi
        for lo, hi in (
            mean_ci(_samples(rng, 5.0, 1.0, 30), alpha=0.01)[1:]
            for _ in range(400)
        )
    )
    assert hits >= 380  # ~396 expected; a hard floor far below noise


# --------------------------------------------------------------------- #
# the combined decision rule
# --------------------------------------------------------------------- #

def _grid(rng, mean_by_label, sd=1.0, n=31):
    return {
        label: {"latency": _samples(rng, mean, sd, n)}
        for label, mean in mean_by_label.items()
    }


def test_known_same_passes():
    rng = np.random.default_rng(11)
    a = _grid(rng, {"r1": 20.0, "r2": 45.0})
    b = _grid(rng, {"r1": 20.0, "r2": 45.0})
    report = check_equivalence(a, b)
    assert report.equivalent, report.summary()
    assert len(report.points) == 2


def test_identical_samples_pass():
    rng = np.random.default_rng(13)
    a = _grid(rng, {"r1": 33.0})
    report = check_equivalence(a, a)
    assert report.equivalent
    point = report.points[0]
    assert point.p_value == pytest.approx(1.0)
    assert not point.cis_disjoint


def test_shifted_mean_fails():
    rng = np.random.default_rng(17)
    a = _grid(rng, {"r1": 20.0}, sd=1.0)
    b = _grid(rng, {"r1": 24.0}, sd=1.0)  # 4 sigma apart: unmistakable
    report = check_equivalence(a, b)
    assert not report.equivalent
    point = report.failures[0]
    assert point.rejected_by_t and point.cis_disjoint
    assert "FAIL" in report.summary()


def test_small_shift_needs_both_detectors():
    # A shift small enough that CIs still overlap must NOT fail the
    # contract even if the t-test alone would reject it.
    rng = np.random.default_rng(19)
    a = _grid(rng, {"r1": 20.0}, sd=2.0, n=200)
    b = _grid(rng, {"r1": 20.5}, sd=2.0, n=200)
    report = check_equivalence(a, b)
    point = report.points[0]
    if point.rejected_by_t:
        assert not point.cis_disjoint
        assert point.equivalent


def test_checker_is_deterministic():
    rng = np.random.default_rng(23)
    a = _grid(rng, {"r1": 20.0, "r2": 45.0})
    b = _grid(rng, {"r1": 20.1, "r2": 44.8})
    first = check_equivalence(a, b)
    second = check_equivalence(a, b)
    assert first.points == second.points
    assert first.summary() == second.summary()


def test_mismatched_grids_raise():
    rng = np.random.default_rng(29)
    a = _grid(rng, {"r1": 20.0})
    b = _grid(rng, {"r2": 20.0})
    with pytest.raises(ValueError, match="labels"):
        check_equivalence(a, b)
    c = {"r1": {"throughput": [1.0, 2.0, 3.0]}}
    with pytest.raises(ValueError, match="metrics"):
        check_equivalence(a, c)


def test_too_few_samples_raise():
    with pytest.raises(ValueError, match="at least 2"):
        welch_t([1.0], [2.0, 3.0])


def test_alpha_is_recorded():
    rng = np.random.default_rng(31)
    a = _grid(rng, {"r1": 5.0})
    report = check_equivalence(a, a, alpha=0.05)
    assert report.alpha == 0.05
    assert DEFAULT_ALPHA == 0.01


# --------------------------------------------------------------------- #
# rank preservation
# --------------------------------------------------------------------- #

def test_rank_preserved():
    ok, order_a, order_b = check_rank_preservation(
        {"OP": 0.9, "R1": 0.5, "R2": 0.4},
        {"OP": 0.8, "R1": 0.6, "R2": 0.5},
    )
    assert ok and order_a == ["OP", "R1", "R2"] == order_b


def test_rank_violated():
    ok, order_a, order_b = check_rank_preservation(
        {"OP": 0.9, "R1": 0.5},
        {"OP": 0.4, "R1": 0.6},
    )
    assert not ok
    assert order_a == ["OP", "R1"] and order_b == ["R1", "OP"]


def test_rank_lower_is_better():
    ok, order_a, _ = check_rank_preservation(
        {"OP": 20.0, "R1": 45.0},
        {"OP": 22.0, "R1": 44.0},
        higher_is_better=False,
    )
    assert ok and order_a == ["OP", "R1"]


def test_rank_mismatched_keys_raise():
    with pytest.raises(ValueError, match="keys"):
        check_rank_preservation({"OP": 1.0}, {"R1": 1.0})
