"""Tests for SimulationResult semantics."""

import math

import pytest

from repro.simulation.metrics import SimulationResult
from repro.util.stats import RunningStats


def make_result(offered, accepted, completed=10):
    lat = RunningStats()
    lat.add(20.0)
    return SimulationResult(
        offered_flits_per_switch_cycle=offered,
        accepted_flits_per_switch_cycle=accepted,
        avg_latency=lat.mean,
        latency=lat,
        total_latency=lat,
        messages_completed=completed,
        messages_generated=completed + 2,
        flits_consumed_measured=int(accepted * 16 * 1000),
        cycles_measured=1000,
        warmup_cycles=100,
    )


class TestSaturationFlag:
    def test_not_saturated_when_tracking(self):
        assert not make_result(1.0, 0.99).saturated

    def test_saturated_when_below(self):
        assert make_result(1.0, 0.5).saturated

    def test_boundary_five_percent(self):
        assert not make_result(1.0, 0.96).saturated
        assert make_result(1.0, 0.94).saturated

    def test_zero_offered_never_saturated(self):
        assert not make_result(0.0, 0.0).saturated


class TestSummary:
    def test_summary_row_keys(self):
        row = make_result(1.0, 0.9).summary_row()
        assert set(row) == {"offered", "accepted", "latency", "completed",
                            "saturated"}

    def test_repr(self):
        out = repr(make_result(1.0, 0.9))
        assert "offered=1.0000" in out and "accepted=0.9000" in out

    def test_repr_nan_latency(self):
        res = make_result(1.0, 0.9)
        res.avg_latency = float("nan")
        assert "latency=nan" in repr(res)
