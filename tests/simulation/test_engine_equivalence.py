"""The vector engine's statistical-equivalence contract, exercised.

The vector engine is deterministic given ``(seed, engine)`` but draws
its RNG streams per replication instead of replaying the reference
engine's scalar draw order, so bit-identity against the
``reference``/``fast``/``batch`` lineage is impossible by design.  This
suite pins down what IS promised:

- determinism: same batch twice -> byte-identical canonical payloads;
- composition invariance: a member's payload does not depend on which
  other members share the lockstep arena (solo == batch == superset);
- statistical equivalence: across 32 seeds per (rate) point, mean
  latency and delivered throughput are indistinguishable from the
  bit-identical lineage's under the combined Welch-t + CI-overlap rule
  of :mod:`repro.simulation.equivalence` (batch engine as the
  reference side — it is bit-identical to ``reference``, so this is
  the cheapest faithful proxy);
- rank preservation: the paper's qualitative result (the OP mapping
  beats random mappings) survives the engine swap;
- multi-VC fallback: unsupported configurations degrade to the
  bit-identical kernel rather than to silently-different physics.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.simulation import BIT_IDENTICAL_ENGINES, ENGINE_NAMES
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import canonical_payload, make_simulator
from repro.simulation.engine_batch import simulate_batch
from repro.simulation.engine_vector import (
    VectorWormholeNetworkSimulator,
    simulate_batch_vector,
)
from repro.simulation.equivalence import (
    check_equivalence,
    check_rank_preservation,
)
from repro.simulation.traffic import IntraClusterTraffic, UniformTraffic
from repro.topology.irregular import random_irregular_topology

SEEDS = 32          # >= 30 per the contract
RATES = (0.004, 0.012, 0.024)   # low load, knee, past saturation
EQ_CONFIG = SimulationConfig(warmup_cycles=300, measure_cycles=1200)


@pytest.fixture(scope="module")
def net8():
    topo = random_irregular_topology(8, degree=3, hosts_per_switch=2,
                                     seed=5)
    return topo, RoutingTable(UpDownRouting(topo))


def _jobs(table, traffic, engine):
    return [
        (table, traffic, rate,
         replace(EQ_CONFIG, seed=seed, engine=engine))
        for rate in RATES for seed in range(SEEDS)
    ]


@pytest.fixture(scope="module")
def sample_grids(net8):
    """label -> metric -> per-seed samples, for both engine lineages."""
    topo, table = net8
    traffic = UniformTraffic(topo)
    vec = simulate_batch_vector(_jobs(table, traffic, "vector"))
    bat = simulate_batch(_jobs(table, traffic, "batch"))
    grids = []
    for results in (vec, bat):
        grid = {}
        for i, rate in enumerate(RATES):
            chunk = results[i * SEEDS:(i + 1) * SEEDS]
            grid[f"rate={rate}"] = {
                "latency": [r.avg_latency for r in chunk],
                "throughput": [r.accepted_flits_per_switch_cycle
                               for r in chunk],
            }
        grids.append(grid)
    return grids


# --------------------------------------------------------------------- #
# the contract itself
# --------------------------------------------------------------------- #

def test_vector_statistically_equivalent(sample_grids):
    vec_grid, bat_grid = sample_grids
    report = check_equivalence(vec_grid, bat_grid)
    assert report.equivalent, report.summary()
    # The grid really covered every (rate, metric) point.
    assert len(report.points) == len(RATES) * 2


def test_equivalence_run_is_deterministic(sample_grids):
    vec_grid, bat_grid = sample_grids
    first = check_equivalence(vec_grid, bat_grid)
    second = check_equivalence(vec_grid, bat_grid)
    assert first.points == second.points


def test_vector_is_not_bit_identical_but_is_registered():
    # The two-tier contract as registry state: vector is a first-class
    # engine, but deliberately outside the bit-identical set.
    assert "vector" in ENGINE_NAMES
    assert "vector" not in BIT_IDENTICAL_ENGINES
    assert set(BIT_IDENTICAL_ENGINES) == {"reference", "fast", "batch"}


# --------------------------------------------------------------------- #
# determinism + composition invariance
# --------------------------------------------------------------------- #

def test_vector_deterministic_and_composition_invariant(net8):
    topo, table = net8
    traffic = UniformTraffic(topo)
    jobs = [(table, traffic, 0.01, replace(EQ_CONFIG, seed=s,
                                           engine="vector"))
            for s in range(3)]
    twice = [simulate_batch_vector(jobs) for _ in range(2)]
    solo = [simulate_batch_vector([j])[0] for j in jobs]
    superset = simulate_batch_vector(
        jobs + [(table, traffic, 0.02, replace(EQ_CONFIG, seed=9,
                                               engine="vector"))])[:3]
    for i in range(3):
        want = canonical_payload(twice[0][i])
        assert canonical_payload(twice[1][i]) == want
        assert canonical_payload(solo[i]) == want
        assert canonical_payload(superset[i]) == want


def test_vector_solo_wrapper_matches_batch(net8):
    topo, table = net8
    traffic = UniformTraffic(topo)
    cfg = replace(EQ_CONFIG, seed=4, engine="vector")
    solo = make_simulator(table, traffic, 0.012, cfg).run()
    batched = simulate_batch_vector([(table, traffic, 0.012, cfg)])[0]
    assert canonical_payload(solo) == canonical_payload(batched)


# --------------------------------------------------------------------- #
# rank preservation on the paper's 16-switch study
# --------------------------------------------------------------------- #

def test_op_mapping_outranks_randoms_on_both_engines():
    from repro.experiments.common import paper_16switch_setup

    setup = paper_16switch_setup()
    table = setup.routing_table
    records = [setup.op_mapping()] + setup.random_mappings(2)
    cfg = SimulationConfig(message_length=16, buffer_flits=2,
                           warmup_cycles=300, measure_cycles=1200)
    rate = 0.0108  # mid-load: mappings separate, none fully saturated
    n = 12

    def mean_latency(results):
        lats = [r.avg_latency for r in results]
        return sum(lats) / len(lats)

    scores = {}
    for engine, runner in (
        ("vector", simulate_batch_vector),
        ("batch", simulate_batch),
    ):
        jobs = [
            (table, IntraClusterTraffic(rec.mapping), rate,
             replace(cfg, seed=seed, engine=engine))
            for rec in records for seed in range(n)
        ]
        results = runner(jobs)
        scores[engine] = {
            rec.name: mean_latency(results[i * n:(i + 1) * n])
            for i, rec in enumerate(records)
        }

    op = records[0].name
    for rec in records[1:]:
        contest_v = {k: scores["vector"][k] for k in (op, rec.name)}
        contest_b = {k: scores["batch"][k] for k in (op, rec.name)}
        ok, order_v, order_b = check_rank_preservation(
            contest_v, contest_b, higher_is_better=False)
        assert ok, (order_v, order_b, scores)
        assert order_v[0] == op, scores


# --------------------------------------------------------------------- #
# multi-VC fallback
# --------------------------------------------------------------------- #

def test_multi_vc_falls_back_to_bit_identical_kernel(net8):
    topo, table = net8
    traffic = UniformTraffic(topo)
    cfg = replace(EQ_CONFIG, seed=3, virtual_channels=2)
    vec = make_simulator(table, traffic, 0.012,
                         replace(cfg, engine="vector")).run()
    fast = make_simulator(table, traffic, 0.012,
                          replace(cfg, engine="fast")).run()
    assert canonical_payload(vec) == canonical_payload(fast)


def test_vector_class_rejects_multi_vc(net8):
    topo, table = net8
    with pytest.raises(ValueError, match="virtual_channels"):
        VectorWormholeNetworkSimulator(
            table, UniformTraffic(topo), 0.01,
            replace(EQ_CONFIG, virtual_channels=2))
