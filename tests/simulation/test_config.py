"""Tests for SimulationConfig validation."""

import dataclasses

import pytest

from repro.simulation.config import SimulationConfig


class TestConfig:
    def test_defaults(self):
        cfg = SimulationConfig()
        assert cfg.message_length == 16
        assert cfg.buffer_flits == 2
        assert cfg.adaptive is True

    def test_frozen(self):
        cfg = SimulationConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.message_length = 8

    @pytest.mark.parametrize("kwargs", [
        {"message_length": 0},
        {"buffer_flits": 0},
        {"delivery_channels": 0},
        {"warmup_cycles": -1},
        {"measure_cycles": 0},
        {"queue_capacity": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)

    def test_replace_works(self):
        cfg = SimulationConfig()
        cfg2 = dataclasses.replace(cfg, seed=99)
        assert cfg2.seed == 99 and cfg2.message_length == cfg.message_length
