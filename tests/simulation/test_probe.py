"""Tests for communication-requirement estimation from traffic traces."""

import math

import pytest

from repro.core.mapping import (
    LogicalCluster,
    Workload,
    partition_to_mapping,
    random_partition,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.network import WormholeNetworkSimulator
from repro.simulation.probe import estimate_requirements, probe_requirements
from repro.simulation.traffic import IntraClusterTraffic


@pytest.fixture
def mapping16(topo16, workload16):
    part = random_partition([4] * 4, 16, seed=0)
    return partition_to_mapping(part, workload16, topo16)


class TestEstimateRequirements:
    def test_synthetic_trace(self):
        cluster_of_host = {0: 0, 1: 0, 2: 1, 3: 1}
        trace = [
            (0, 0, 1, 16),   # intra cluster 0
            (1, 0, 2, 16),   # cross cluster
            (2, 2, 3, 8),    # intra cluster 1
        ]
        est = estimate_requirements(trace, cluster_of_host, cycles_observed=100)
        c0 = est.per_cluster[0]
        assert c0.messages == 2 and c0.flits == 32
        assert c0.intracluster_fraction == pytest.approx(0.5)
        assert c0.flits_per_process_cycle == pytest.approx(32 / 2 / 100)
        c1 = est.per_cluster[1]
        assert c1.intracluster_fraction == pytest.approx(1.0)
        assert est.total_flits == 40
        assert est.flits_per_process_cycle == pytest.approx(40 / 4 / 100)

    def test_unknown_hosts_ignored(self):
        est = estimate_requirements([(0, 99, 0, 16)], {0: 0}, 10)
        assert est.total_flits == 0

    def test_empty_trace(self):
        est = estimate_requirements([], {0: 0, 1: 0}, 10)
        assert est.flits_per_process_cycle == 0.0
        assert math.isnan(est.intracluster_fraction)
        assert math.isnan(est.per_cluster[0].intracluster_fraction)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            estimate_requirements([], {0: 0}, 0)


class TestProbeRequirements:
    def test_estimates_configured_rate(self, rtable16, mapping16):
        rate = 0.01
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=4000,
                               record_trace=True, seed=3)
        sim = WormholeNetworkSimulator(
            rtable16, IntraClusterTraffic(mapping16), rate, cfg
        )
        est = probe_requirements(sim,
                                 cluster_of_host=mapping16.cluster_of_host())
        expected = rate * cfg.message_length
        assert est.flits_per_process_cycle == pytest.approx(expected, rel=0.15)
        # The paper's assumption holds for this traffic: 100 % intracluster.
        assert est.intracluster_fraction == pytest.approx(1.0)

    def test_estimates_intercluster_fraction(self, rtable16, mapping16):
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=3000,
                               record_trace=True, seed=4)
        traffic = IntraClusterTraffic(mapping16, intercluster_fraction=0.3)
        sim = WormholeNetworkSimulator(rtable16, traffic, 0.01, cfg)
        est = probe_requirements(sim,
                                 cluster_of_host=mapping16.cluster_of_host())
        assert est.intracluster_fraction == pytest.approx(0.7, abs=0.07)

    def test_requires_recording(self, rtable16, mapping16):
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=100, seed=5)
        sim = WormholeNetworkSimulator(
            rtable16, IntraClusterTraffic(mapping16), 0.01, cfg
        )
        with pytest.raises(ValueError, match="record_trace"):
            probe_requirements(sim,
                               cluster_of_host=mapping16.cluster_of_host())

    def test_feeds_integrated_scheduler(self, topo16, rtable16, mapping16,
                                        workload16):
        """End to end: probe -> requirement -> strategy choice."""
        from repro.hetsched.integrated import IntegratedScheduler
        from repro.hetsched.workload import generate_etc

        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=1500,
                               record_trace=True, seed=6)
        sim = WormholeNetworkSimulator(
            rtable16, IntraClusterTraffic(mapping16), 0.05, cfg
        )
        est = probe_requirements(sim,
                                 cluster_of_host=mapping16.cluster_of_host())
        scheduler = IntegratedScheduler(topo16)
        etc = generate_etc(64, 64, seed=0)
        decision = scheduler.estimate_bottleneck(
            workload16, etc, est.flits_per_process_cycle
        )
        # 0.05 msgs/cycle * 16 flits = 0.8 flits/process/cycle: comm-bound.
        assert decision.bottleneck == "communication"

    def test_step_mode(self, rtable16, mapping16):
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=100,
                               record_trace=True, seed=7)
        sim = WormholeNetworkSimulator(
            rtable16, IntraClusterTraffic(mapping16), 0.02, cfg
        )
        est = probe_requirements(
            sim, cluster_of_host=mapping16.cluster_of_host(), cycles=500
        )
        assert est.cycles_observed == 500
        assert est.total_flits > 0
