"""Arbitration-level behaviour: fairness and deterministic routing."""

import pytest

from repro.routing.base import Phase
from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.simulation.config import SimulationConfig
from repro.simulation.network import WormholeNetworkSimulator
from repro.topology.graph import Topology


class TwoSenderTraffic:
    """Hosts 0 and 1 (switch 0) both send to hosts on switch 1 — they
    compete for the single 0->1 link forever."""

    def dest_for(self, src_host, rng):
        return 2 if src_host == 0 else 3

    def active_hosts(self):
        return [0, 1]

    def rate_scale(self, host):
        return 1.0


@pytest.fixture
def chain_table():
    topo = Topology(2, [(0, 1)], hosts_per_switch=2, switch_ports=4)
    return RoutingTable(UpDownRouting(topo, root=0))


class TestFairness:
    def test_no_starvation_under_contention(self, chain_table):
        cfg = SimulationConfig(message_length=8, warmup_cycles=0,
                               measure_cycles=3000, seed=1)
        sim = WormholeNetworkSimulator(chain_table, TwoSenderTraffic(),
                                       0.5, cfg)
        sim.run()
        # Both flows must have completed a healthy share of messages.
        per_dst = {2: 0, 3: 0}
        # Count deliveries via consumed flits per flow using the trace-free
        # proxy: rerun with recording.
        cfg2 = SimulationConfig(message_length=8, warmup_cycles=0,
                                measure_cycles=3000, seed=1,
                                record_trace=True)
        sim2 = WormholeNetworkSimulator(chain_table, TwoSenderTraffic(),
                                        0.5, cfg2)
        res = sim2.run()
        assert res.messages_completed > 100
        gen = {2: 0, 3: 0}
        for _c, _s, d, _l in sim2.trace:
            gen[d] += 1
        ratio = min(gen.values()) / max(gen.values())
        assert ratio > 0.5, f"generation already skewed: {gen}"

    def test_shared_link_throughput_bounded(self, chain_table):
        # One 1-flit/cycle link: accepted traffic across it can never
        # exceed 1 flit/cycle => 0.5 flits/switch/cycle on 2 switches.
        cfg = SimulationConfig(message_length=8, warmup_cycles=200,
                               measure_cycles=2000, seed=2)
        sim = WormholeNetworkSimulator(chain_table, TwoSenderTraffic(),
                                       0.5, cfg)
        res = sim.run()
        assert res.accepted_flits_per_switch_cycle <= 0.5 + 0.02
        # And it should be close to saturating that link.
        assert res.accepted_flits_per_switch_cycle > 0.35


class TestDeterministicRouting:
    def test_deterministic_mode_pins_next_hop(self, topo16, rtable16):
        """In deterministic mode the simulator always requests the first
        legal hop: verify the table's hop ordering is stable and that the
        first hop is a function of (switch, phase, destination) only."""
        for dst in range(0, 16, 3):
            for src in range(16):
                if src == dst:
                    continue
                first = rtable16.hops(src, Phase.UP, dst)
                again = rtable16.hops(src, Phase.UP, dst)
                assert first == again
                assert first[0] == min(first)  # sorted -> deterministic pick

    def test_deterministic_run_reproducible_across_instances(self, rtable16,
                                                             topo16):
        from repro.core.mapping import (Workload, partition_to_mapping,
                                        random_partition)
        from repro.simulation.traffic import IntraClusterTraffic

        w = Workload.uniform(4, 16)
        part = random_partition([4] * 4, 16, seed=1)
        mapping = partition_to_mapping(part, w, topo16)
        cfg = SimulationConfig(warmup_cycles=100, measure_cycles=500,
                               adaptive=False, seed=3)

        def run():
            sim = WormholeNetworkSimulator(
                rtable16, IntraClusterTraffic(mapping), 0.02, cfg
            )
            r = sim.run()
            return (r.flits_consumed_measured, r.avg_latency)

        assert run() == run()
