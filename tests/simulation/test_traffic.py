"""Tests for traffic patterns."""

import random
from collections import Counter

import pytest

from repro.core.mapping import (
    LogicalCluster,
    Workload,
    partition_to_mapping,
    random_partition,
)
from repro.simulation.traffic import (
    HotspotTraffic,
    IntraClusterTraffic,
    UniformTraffic,
)


@pytest.fixture
def mapping16(topo16, workload16):
    part = random_partition([4] * 4, 16, seed=0)
    return partition_to_mapping(part, workload16, topo16)


class TestUniform:
    def test_never_self(self, topo16):
        t = UniformTraffic(topo16)
        rng = random.Random(0)
        for src in range(0, topo16.num_hosts, 7):
            for _ in range(50):
                assert t.dest_for(src, rng) != src

    def test_covers_all_hosts(self, topo16):
        t = UniformTraffic(topo16)
        rng = random.Random(1)
        seen = {t.dest_for(0, rng) for _ in range(3000)}
        assert seen == set(range(1, topo16.num_hosts))

    def test_active_hosts(self, topo16):
        assert list(UniformTraffic(topo16).active_hosts()) == \
            list(range(topo16.num_hosts))

    def test_needs_two_hosts(self):
        from repro.topology.graph import Topology

        t = Topology(1, [], hosts_per_switch=1, switch_ports=4)
        with pytest.raises(ValueError):
            UniformTraffic(t)


class TestIntraCluster:
    def test_destinations_stay_in_cluster(self, mapping16):
        t = IntraClusterTraffic(mapping16)
        c_of_h = mapping16.cluster_of_host()
        rng = random.Random(2)
        for src in t.active_hosts():
            for _ in range(30):
                dst = t.dest_for(src, rng)
                assert dst != src
                assert c_of_h[dst] == c_of_h[src]

    def test_uniform_within_cluster(self, mapping16):
        t = IntraClusterTraffic(mapping16)
        rng = random.Random(3)
        src = t.active_hosts()[0]
        counts = Counter(t.dest_for(src, rng) for _ in range(6000))
        # 15 possible destinations, each ~400 draws.
        assert len(counts) == 15
        assert min(counts.values()) > 250

    def test_intercluster_fraction(self, mapping16):
        t = IntraClusterTraffic(mapping16, intercluster_fraction=0.5)
        c_of_h = mapping16.cluster_of_host()
        rng = random.Random(4)
        src = t.active_hosts()[0]
        outside = sum(
            c_of_h[t.dest_for(src, rng)] != c_of_h[src] for _ in range(4000)
        )
        assert 0.4 < outside / 4000 < 0.6

    def test_invalid_fraction(self, mapping16):
        with pytest.raises(ValueError):
            IntraClusterTraffic(mapping16, intercluster_fraction=1.5)

    def test_weighted_rate_scale(self, topo16):
        w = Workload([
            LogicalCluster("heavy", 32, comm_weight=3.0),
            LogicalCluster("light", 32, comm_weight=1.0),
        ])
        part = random_partition([8, 8], 16, seed=1)
        mapping = partition_to_mapping(part, w, topo16)
        t = IntraClusterTraffic(mapping, weighted=True)
        heavy_host = mapping.host_of[(0, 0)]
        light_host = mapping.host_of[(1, 0)]
        assert t.rate_scale(heavy_host) == 3.0
        assert t.rate_scale(light_host) == 1.0

    def test_unweighted_rate_scale_is_one(self, mapping16):
        t = IntraClusterTraffic(mapping16)
        assert all(t.rate_scale(h) == 1.0 for h in t.active_hosts())

    def test_single_host_cluster_rejected(self):
        # A cluster with a single host has no intracluster destination.
        from repro.topology.graph import Topology

        tiny = Topology(3, [(0, 1), (1, 2)], hosts_per_switch=1,
                        switch_ports=4)
        w2 = Workload([LogicalCluster("a", 1), LogicalCluster("b", 2)])
        part2 = random_partition([1, 2], 3, seed=0)
        mapping2 = partition_to_mapping(part2, w2, tiny)
        with pytest.raises(ValueError, match="single host"):
            IntraClusterTraffic(mapping2)


class TestHotspot:
    def test_hotspot_bias(self, topo16):
        t = HotspotTraffic(topo16, hotspots=[5], hotspot_fraction=0.5)
        rng = random.Random(5)
        counts = Counter(t.dest_for(0, rng) for _ in range(4000))
        assert counts[5] / 4000 > 0.4

    def test_hotspot_never_self(self, topo16):
        t = HotspotTraffic(topo16, hotspots=[0], hotspot_fraction=1.0)
        rng = random.Random(6)
        for _ in range(100):
            assert t.dest_for(0, rng) != 0

    def test_validation(self, topo16):
        with pytest.raises(ValueError):
            HotspotTraffic(topo16, hotspots=[])
        with pytest.raises(ValueError):
            HotspotTraffic(topo16, hotspots=[10_000])
        with pytest.raises(ValueError):
            HotspotTraffic(topo16, hotspots=[0], hotspot_fraction=2.0)
