"""Behavioural tests of the wormhole simulator."""

import math

import pytest

from repro.core.mapping import partition_to_mapping, random_partition, Workload
from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.simulation.config import SimulationConfig
from repro.simulation.network import WormholeNetworkSimulator
from repro.simulation.traffic import IntraClusterTraffic, UniformTraffic
from repro.topology.designed import ring_topology
from repro.topology.graph import Topology


def two_switch_table():
    topo = Topology(2, [(0, 1)], hosts_per_switch=2, switch_ports=4)
    return RoutingTable(UpDownRouting(topo, root=0))


class SingleShotTraffic:
    """Deterministic pattern: host 0 sends to a fixed destination."""

    def __init__(self, dst):
        self.dst = dst

    def dest_for(self, src_host, rng):
        return self.dst

    def active_hosts(self):
        return [0]

    def rate_scale(self, host):
        return 1.0


class TestBasicOperation:
    def test_zero_rate_idle(self, rtable16, topo16, workload16):
        part = random_partition([4] * 4, 16, seed=0)
        mapping = partition_to_mapping(part, workload16, topo16)
        cfg = SimulationConfig(warmup_cycles=10, measure_cycles=50)
        sim = WormholeNetworkSimulator(
            rtable16, IntraClusterTraffic(mapping), 0.0, cfg
        )
        res = sim.run()
        assert res.messages_generated == 0
        assert res.accepted_flits_per_switch_cycle == 0.0
        assert math.isnan(res.avg_latency)

    def test_rate_above_one_rejected(self, rtable16, topo16):
        with pytest.raises(ValueError):
            WormholeNetworkSimulator(
                rtable16, UniformTraffic(topo16), 1.5, SimulationConfig()
            )

    def test_negative_rate_rejected(self, rtable16, topo16):
        with pytest.raises(ValueError):
            WormholeNetworkSimulator(
                rtable16, UniformTraffic(topo16), -0.1, SimulationConfig()
            )

    def test_single_message_latency_cross_switch(self):
        """One unblocked message: latency ≈ hops + message length."""
        table = two_switch_table()
        cfg = SimulationConfig(message_length=8, buffer_flits=2,
                               warmup_cycles=0, measure_cycles=500, seed=1)
        # host 0 (switch 0) -> host 2 (switch 1)
        sim = WormholeNetworkSimulator(table, SingleShotTraffic(2), 0.02, cfg)
        res = sim.run()
        assert res.messages_completed >= 1
        # Path: injection channel + 1 link + delivery; pipeline depth small.
        assert 8 <= res.avg_latency <= 14

    def test_single_message_latency_same_switch(self):
        table = two_switch_table()
        cfg = SimulationConfig(message_length=8, warmup_cycles=0,
                               measure_cycles=500, seed=2)
        # host 0 -> host 1 both on switch 0.
        sim = WormholeNetworkSimulator(table, SingleShotTraffic(1), 0.02, cfg)
        res = sim.run()
        assert res.messages_completed >= 1
        assert 8 <= res.avg_latency <= 12

    def test_latency_grows_with_message_length(self):
        table = two_switch_table()
        lats = []
        for length in (4, 16):
            cfg = SimulationConfig(message_length=length, warmup_cycles=0,
                                   measure_cycles=1500, seed=3)
            sim = WormholeNetworkSimulator(table, SingleShotTraffic(2),
                                           0.01, cfg)
            lats.append(sim.run().avg_latency)
        assert lats[1] > lats[0] + 8  # ~12 extra flits at 1 flit/cycle

    def test_flit_conservation(self, rtable16, topo16, workload16):
        part = random_partition([4] * 4, 16, seed=1)
        mapping = partition_to_mapping(part, workload16, topo16)
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=400, seed=4)
        sim = WormholeNetworkSimulator(
            rtable16, IntraClusterTraffic(mapping), 0.01, cfg
        )
        res = sim.run()
        # Every measured flit belongs to a generated message.
        assert res.flits_consumed_measured <= \
            res.messages_generated * cfg.message_length
        assert res.messages_completed > 0

    def test_reproducible(self, rtable16, topo16, workload16):
        part = random_partition([4] * 4, 16, seed=2)
        mapping = partition_to_mapping(part, workload16, topo16)
        cfg = SimulationConfig(warmup_cycles=50, measure_cycles=300, seed=5)

        def run():
            sim = WormholeNetworkSimulator(
                rtable16, IntraClusterTraffic(mapping), 0.02, cfg
            )
            return sim.run()

        a, b = run(), run()
        assert a.flits_consumed_measured == b.flits_consumed_measured
        assert a.avg_latency == b.avg_latency


class TestLoadBehaviour:
    def test_accepted_tracks_offered_at_low_load(self, rtable16, topo16,
                                                 workload16):
        part = random_partition([4] * 4, 16, seed=3)
        mapping = partition_to_mapping(part, workload16, topo16)
        cfg = SimulationConfig(warmup_cycles=300, measure_cycles=1500, seed=6)
        sim = WormholeNetworkSimulator(
            rtable16, IntraClusterTraffic(mapping), 0.003, cfg
        )
        res = sim.run()
        ratio = (res.accepted_flits_per_switch_cycle
                 / res.offered_flits_per_switch_cycle)
        assert 0.9 < ratio < 1.1
        assert not res.saturated

    def test_saturation_at_high_load(self, rtable16, topo16, workload16):
        part = random_partition([4] * 4, 16, seed=3)
        mapping = partition_to_mapping(part, workload16, topo16)
        cfg = SimulationConfig(warmup_cycles=300, measure_cycles=1000, seed=7)
        sim = WormholeNetworkSimulator(
            rtable16, IntraClusterTraffic(mapping), 0.2, cfg
        )
        res = sim.run()
        assert res.saturated
        assert res.accepted_flits_per_switch_cycle < \
            res.offered_flits_per_switch_cycle

    def test_latency_increases_with_load(self, rtable16, topo16, workload16):
        part = random_partition([4] * 4, 16, seed=4)
        mapping = partition_to_mapping(part, workload16, topo16)
        lats = []
        for rate in (0.002, 0.02):
            cfg = SimulationConfig(warmup_cycles=200, measure_cycles=1000,
                                   seed=8)
            sim = WormholeNetworkSimulator(
                rtable16, IntraClusterTraffic(mapping), rate, cfg
            )
            lats.append(sim.run().avg_latency)
        assert lats[1] > lats[0]

    def test_deterministic_vs_adaptive(self, rtable16, topo16, workload16):
        # Adaptive routing should never be materially worse in saturation.
        part = random_partition([4] * 4, 16, seed=5)
        mapping = partition_to_mapping(part, workload16, topo16)
        acc = {}
        for adaptive in (False, True):
            cfg = SimulationConfig(warmup_cycles=300, measure_cycles=1200,
                                   adaptive=adaptive, seed=9)
            sim = WormholeNetworkSimulator(
                rtable16, IntraClusterTraffic(mapping), 0.1, cfg
            )
            acc[adaptive] = sim.run().accepted_flits_per_switch_cycle
        assert acc[True] >= 0.8 * acc[False]


class TestInvariants:
    def test_invariants_hold_throughout(self, rtable16, topo16, workload16):
        part = random_partition([4] * 4, 16, seed=6)
        mapping = partition_to_mapping(part, workload16, topo16)
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=300, seed=10)
        sim = WormholeNetworkSimulator(
            rtable16, IntraClusterTraffic(mapping), 0.05, cfg
        )
        for _ in range(300):
            sim.step()
            if sim.cycle % 10 == 0:
                sim.check_invariants()

    def test_delivery_tokens_restored_when_drained(self, rtable16, topo16,
                                                   workload16):
        part = random_partition([4] * 4, 16, seed=7)
        mapping = partition_to_mapping(part, workload16, topo16)
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=200, seed=11,
                               queue_capacity=4)
        sim = WormholeNetworkSimulator(
            rtable16, IntraClusterTraffic(mapping), 0.01, cfg
        )
        # Run a burst then let the network drain completely.
        for _ in range(200):
            sim.step()
        sim._host_rate = {h: 0.0 for h in sim._host_rate}
        sim._arrivals = []
        for _ in range(2000):
            sim.step()
            if not sim.active:
                break
        assert not sim.active, "network failed to drain (possible deadlock)"
        dc = cfg.delivery_channels or topo16.hosts_per_switch
        assert all(a == dc for a in sim.avail_delivery)
        assert all(o is None for o in sim.owner)

    def test_queue_capacity_bounds_memory(self, rtable16, topo16, workload16):
        part = random_partition([4] * 4, 16, seed=8)
        mapping = partition_to_mapping(part, workload16, topo16)
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=300, seed=12,
                               queue_capacity=3)
        sim = WormholeNetworkSimulator(
            rtable16, IntraClusterTraffic(mapping), 0.5, cfg
        )
        for _ in range(300):
            sim.step()
            assert all(len(q) <= 3 for q in sim.queues.values())
