"""Regression tests: routing-candidate stores live on the RoutingTable.

PR 8 moved the per-slot routing-candidate structures off the engine
instances and onto the :class:`RoutingTable` (``candidate_cache`` for the
scalar/batch kernels, ``engine_cache`` for the vector kernel's dense
arrays).  These tests pin the sharing down by object identity — two
engines on one table must reuse ONE store, not rebuild per
instantiation — and check the stores stay out of pickled pool jobs.
"""

from __future__ import annotations

import pickle

from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import make_simulator
from repro.simulation.engine_batch import _BatchCore
from repro.simulation.engine_vector import _VectorCore
from repro.simulation.traffic import UniformTraffic
from repro.topology.irregular import random_irregular_topology

CFG = SimulationConfig(warmup_cycles=50, measure_cycles=200)


def _setup():
    topo = random_irregular_topology(8, degree=3, hosts_per_switch=2,
                                     seed=5)
    return topo, RoutingTable(UpDownRouting(topo))


def test_fast_engines_share_candidate_store_by_identity():
    topo, table = _setup()
    traffic = UniformTraffic(topo)
    a = make_simulator(table, traffic, 0.01, CFG)
    b = make_simulator(table, traffic, 0.02,
                       SimulationConfig(seed=3, warmup_cycles=50,
                                        measure_cycles=200))
    assert a._cand_cache is b._cand_cache
    assert a._cand_cache is table.candidate_cache(1, CFG.adaptive)


def test_second_engine_starts_with_a_warm_store():
    topo, table = _setup()
    traffic = UniformTraffic(topo)
    a = make_simulator(table, traffic, 0.02, CFG)
    a.run()
    filled = len(table.candidate_cache(1, CFG.adaptive))
    assert filled > 0  # the run populated (head, phase, dst) entries
    b = make_simulator(table, traffic, 0.02, CFG)
    # Same object, so the second engine sees every entry the first built.
    assert len(b._cand_cache) == filled


def test_batch_core_shares_the_scalar_store():
    topo, table = _setup()
    traffic = UniformTraffic(topo)
    fast = make_simulator(table, traffic, 0.01, CFG)
    core = _BatchCore(table, [(traffic, 0.01, CFG)])
    assert core._cand_cache[CFG.adaptive] is fast._cand_cache


def test_vector_cores_share_dense_arrays_by_identity():
    topo, table = _setup()
    traffic = UniformTraffic(topo)
    a = _VectorCore(table, [(traffic, 0.01, CFG)])
    b = _VectorCore(table, [(traffic, 0.02, CFG), (traffic, 0.01, CFG)])
    # The padded numpy tables are built once per table per process.
    assert a.cand_cid is b.cand_cid
    assert a.cand_sw is b.cand_sw
    assert a.cand_ph is b.cand_ph
    assert a.cand_n is b.cand_n


def test_caches_are_dropped_from_pickled_tables():
    topo, table = _setup()
    traffic = UniformTraffic(topo)
    make_simulator(table, traffic, 0.02, CFG).run()
    _VectorCore(table, [(traffic, 0.01, CFG)])
    assert table.__dict__.get("_engine_caches")
    clone = pickle.loads(pickle.dumps(table))
    # Pool jobs arrive lean and rebuild lazily on first use.
    assert "_engine_caches" not in clone.__dict__
    assert clone.candidate_cache(1, CFG.adaptive) == {}
