"""Tests for load sweeps and saturation estimation."""

import pytest

from repro.core.mapping import partition_to_mapping, random_partition
from repro.routing.tables import RoutingTable
from repro.simulation.config import SimulationConfig
from repro.simulation.sweep import (
    find_saturation_rate,
    make_load_points,
    run_load_sweep,
)
from repro.simulation.traffic import IntraClusterTraffic


@pytest.fixture
def traffic16(topo16, workload16):
    part = random_partition([4] * 4, 16, seed=0)
    return IntraClusterTraffic(partition_to_mapping(part, workload16, topo16))


@pytest.fixture
def traffic8(topo8, workload8):
    part = random_partition([4] * 2, 8, seed=0)
    return IntraClusterTraffic(partition_to_mapping(part, workload8, topo8))


QUICK = SimulationConfig(warmup_cycles=150, measure_cycles=600, seed=3)


class TestMakeLoadPoints:
    def test_count_and_range(self):
        pts = make_load_points(0.9, n=9)
        assert len(pts) == 9
        assert pts[0] == pytest.approx(0.09)
        assert pts[-1] == pytest.approx(0.9)

    def test_monotone(self):
        pts = make_load_points(0.5, n=5)
        assert all(a < b for a, b in zip(pts, pts[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            make_load_points(0)
        with pytest.raises(ValueError):
            make_load_points(0.5, n=1)


class TestRunLoadSweep:
    def test_labels_and_rates(self, rtable16, traffic16):
        pts = run_load_sweep(rtable16, traffic16, [0.002, 0.01], QUICK)
        assert [p.label for p in pts] == ["S1", "S2"]
        assert [p.rate for p in pts] == [0.002, 0.01]

    def test_offered_scales_with_rate(self, rtable16, traffic16):
        pts = run_load_sweep(rtable16, traffic16, [0.002, 0.004], QUICK)
        a, b = (p.result.offered_flits_per_switch_cycle for p in pts)
        assert b == pytest.approx(2 * a)

    def test_accepted_monotone_until_saturation(self, rtable16, traffic16):
        pts = run_load_sweep(rtable16, traffic16, [0.002, 0.006, 0.012], QUICK)
        acc = [p.result.accepted_flits_per_switch_cycle for p in pts]
        assert acc[0] < acc[2] * 1.5  # low load accepts less than higher load


class TestParallelSweep:
    def test_parallel_equals_serial(self, routing8, traffic8):
        """A pooled sweep is bit-identical to the serial one.

        Each point's seed depends only on ``config.seed`` and its index,
        so where the point runs cannot influence the result.
        """
        rt = RoutingTable(routing8)
        rates = [0.004, 0.015]
        serial = run_load_sweep(rt, traffic8, rates, QUICK, workers=1)
        pooled = run_load_sweep(rt, traffic8, rates, QUICK, workers=2)
        assert len(serial) == len(pooled) == 2
        for s, p in zip(serial, pooled):
            assert p.index == s.index
            assert p.rate == s.rate
            assert p.result == s.result  # dataclass: field-wise equality

    def test_env_workers_equals_serial(self, routing8, traffic8, monkeypatch):
        rt = RoutingTable(routing8)
        serial = run_load_sweep(rt, traffic8, [0.01], QUICK)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        pooled = run_load_sweep(rt, traffic8, [0.01], QUICK)
        assert pooled[0].result == serial[0].result


class TestFindSaturation:
    def test_returns_positive_throughput(self, rtable16, traffic16):
        out = find_saturation_rate(rtable16, traffic16, QUICK)
        assert out["throughput"] > 0
        assert 0 < out["rate"] <= 1.0

    def test_saturation_rate_not_saturated_below(self, rtable16, traffic16):
        out = find_saturation_rate(rtable16, traffic16, QUICK)
        pts = run_load_sweep(rtable16, traffic16, [out["rate"] * 0.5], QUICK)
        assert not pts[0].result.saturated

    def test_validation(self, rtable16, traffic16):
        with pytest.raises(ValueError):
            find_saturation_rate(rtable16, traffic16, QUICK, lo=0.5, hi=0.1)
