"""Tests for virtual-channel support in the simulator."""

import pytest

from repro.core.mapping import Workload, partition_to_mapping, random_partition
from repro.simulation.config import SimulationConfig
from repro.simulation.network import WormholeNetworkSimulator
from repro.simulation.traffic import IntraClusterTraffic, UniformTraffic


@pytest.fixture
def traffic16(topo16, workload16):
    part = random_partition([4] * 4, 16, seed=3)
    return IntraClusterTraffic(partition_to_mapping(part, workload16, topo16))


class TestVirtualChannels:
    def test_channel_layout(self, rtable16, topo16):
        cfg = SimulationConfig(virtual_channels=3)
        sim = WormholeNetworkSimulator(rtable16, UniformTraffic(topo16),
                                       0.01, cfg)
        # 2 directions x 3 VCs per link + one injection channel per host.
        assert sim.num_channels == 2 * topo16.num_links * 3 + topo16.num_hosts
        # Every VC of a directed link shares one physical id.
        for (u, v), cids in sim.chan_of.items():
            assert len(cids) == 3
            phys = {sim.phys_of[c] for c in cids}
            assert len(phys) == 1
            assert all(sim.sink_switch[c] == v for c in cids)

    def test_invalid_vc_count(self):
        with pytest.raises(ValueError):
            SimulationConfig(virtual_channels=0)

    def test_invariants_hold_with_vcs(self, rtable16, traffic16):
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=300, seed=1,
                               virtual_channels=2)
        sim = WormholeNetworkSimulator(rtable16, traffic16, 0.05, cfg)
        for _ in range(300):
            sim.step()
        sim.check_invariants()

    def test_drain_with_vcs(self, rtable16, traffic16):
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=200, seed=2,
                               virtual_channels=4)
        sim = WormholeNetworkSimulator(rtable16, traffic16, 0.2, cfg)
        for _ in range(200):
            sim.step()
        sim._host_rate = {h: 0.0 for h in sim._host_rate}
        sim._arrivals = []
        for q in sim.queues.values():
            q.clear()
        for _ in range(5000):
            sim.step()
            if not sim.active:
                break
        assert not sim.active, "VC network failed to drain"

    def test_more_vcs_more_saturation_throughput(self, rtable16, traffic16):
        accepted = {}
        for vcs in (1, 4):
            cfg = SimulationConfig(warmup_cycles=300, measure_cycles=1200,
                                   seed=9, virtual_channels=vcs)
            sim = WormholeNetworkSimulator(rtable16, traffic16, 0.1, cfg)
            accepted[vcs] = sim.run().accepted_flits_per_switch_cycle
        assert accepted[4] > 1.2 * accepted[1], (
            f"4 VCs should relieve head-of-line blocking: {accepted}"
        )

    def test_link_bandwidth_still_shared(self, rtable16, topo16):
        """With many VCs the physical link still moves <= 1 flit/cycle:
        total accepted traffic cannot exceed what link counts allow."""
        uniform = UniformTraffic(topo16)
        cfg = SimulationConfig(warmup_cycles=200, measure_cycles=800, seed=3,
                               virtual_channels=8)
        sim = WormholeNetworkSimulator(rtable16, uniform, 0.3, cfg)
        res = sim.run()
        # 6 directed link-crossings per switch max, mean path > 1 hop =>
        # accepted < 6 flits/switch/cycle with huge slack; the real check
        # is that it stays well below the no-sharing bound of 6*VCs.
        assert res.accepted_flits_per_switch_cycle < 6.0
