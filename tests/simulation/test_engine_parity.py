"""Bit-identical parity between the reference, fast and batch engines.

The struct-of-arrays kernel (:mod:`repro.simulation.engine_fast`) and the
many-replication batch kernel (:mod:`repro.simulation.engine_batch`) both
promise the *same* :class:`~repro.simulation.metrics.SimulationResult`
payload as the readable reference engine for every configuration — same
RNG draw order, same arbitration decisions, same statistics, down to the
last float.  :func:`repro.simulation.engine.canonical_payload` strips only
the engine-dependent wall-time/observability counters before comparison.

Three layers of evidence, each run three-way:

- a deterministic 48-scenario matrix (3 irregular topologies ×
  {adaptive, deterministic} × {1, 2} virtual channels × 2 seeds ×
  2 injection rates);
- a Hypothesis property over randomly drawn topologies and configs;
- targeted regressions: long messages (worm tail spans many channels,
  exercising the O(1) tail release), stepwise execution with invariant
  checks, and trace recording.

Batch-specific coverage (composition invariance, heterogeneous batches,
compatibility errors) lives in ``test_engine_batch.py``.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.sinks import MemorySink
from repro.obs.trace import Tracer, use_tracer
from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import canonical_payload, make_simulator
from repro.simulation.traffic import IntraClusterTraffic, UniformTraffic
from repro.topology.designed import ring_topology
from repro.topology.irregular import random_irregular_topology

ENGINES = ("reference", "fast", "batch")


def _run_all(table, make_traffic, rate, cfg):
    """Run all three engines on identical inputs -> name -> payload."""
    payloads = {}
    for engine in ENGINES:
        sim = make_simulator(table, make_traffic(), rate,
                             replace(cfg, engine=engine))
        payloads[engine] = canonical_payload(sim.run())
    return payloads


def _assert_identical(ref_payload, other_payload, context="", label="fast"):
    if ref_payload != other_payload:
        diffs = [
            f"  {k}: ref={ref_payload[k]!r} {label}={other_payload.get(k)!r}"
            for k in ref_payload
            if ref_payload[k] != other_payload.get(k)
        ]
        pytest.fail(f"engine divergence {context}\n" + "\n".join(diffs))


def _assert_three_way(payloads, context=""):
    """Every engine's payload must equal the reference's, byte for byte."""
    ref = payloads["reference"]
    for engine in ENGINES[1:]:
        _assert_identical(ref, payloads[engine], context, label=engine)


def _small_table(topo_seed):
    topo = random_irregular_topology(8, degree=3, hosts_per_switch=2,
                                     seed=topo_seed)
    return topo, RoutingTable(UpDownRouting(topo))


# --------------------------------------------------------------------- #
# deterministic matrix
# --------------------------------------------------------------------- #


class TestParityMatrix:
    """3 topologies × 2 routing modes × 2 VC counts × 2 seeds × 2 rates."""

    @pytest.mark.parametrize("topo_seed", [11, 23, 37])
    @pytest.mark.parametrize("adaptive", [True, False])
    @pytest.mark.parametrize("vcs", [1, 2])
    def test_payloads_identical(self, topo_seed, adaptive, vcs):
        topo, table = _small_table(topo_seed)
        for seed in (0, 3):
            for rate in (0.002, 0.02):
                cfg = SimulationConfig(
                    message_length=16, buffer_flits=2,
                    virtual_channels=vcs, adaptive=adaptive,
                    warmup_cycles=200, measure_cycles=800, seed=seed,
                )
                payloads = _run_all(
                    table, lambda: UniformTraffic(topo), rate, cfg)
                _assert_three_way(
                    payloads,
                    f"(topo={topo_seed} adaptive={adaptive} vcs={vcs} "
                    f"seed={seed} rate={rate})",
                )

    def test_intracluster_traffic_parity(self, rtable16, topo16, workload16):
        """The paper's actual traffic pattern, on the paper's network."""
        from repro.core.mapping import partition_to_mapping, random_partition

        part = random_partition([4] * 4, 16, seed=5)
        mapping = partition_to_mapping(part, workload16, topo16)
        cfg = SimulationConfig(message_length=16, buffer_flits=2,
                               warmup_cycles=300, measure_cycles=1200,
                               seed=7)
        payloads = _run_all(
            rtable16, lambda: IntraClusterTraffic(mapping), 0.01, cfg)
        _assert_three_way(payloads, "(intracluster, 16-switch)")
        assert payloads["reference"]["messages_completed"] > 0


# --------------------------------------------------------------------- #
# hypothesis property
# --------------------------------------------------------------------- #


@st.composite
def parity_scenarios(draw):
    topo_seed = draw(st.integers(0, 10_000))
    num_switches = draw(st.sampled_from([6, 8, 10]))
    topo = random_irregular_topology(
        num_switches, degree=3, hosts_per_switch=2, seed=topo_seed)
    cfg = SimulationConfig(
        message_length=draw(st.sampled_from([4, 16, 64])),
        buffer_flits=draw(st.sampled_from([1, 2, 4])),
        virtual_channels=draw(st.sampled_from([1, 2])),
        adaptive=draw(st.booleans()),
        warmup_cycles=100,
        measure_cycles=400,
        seed=draw(st.integers(0, 10_000)),
    )
    rate = draw(st.sampled_from([0.002, 0.01, 0.03]))
    return topo, cfg, rate


@given(parity_scenarios())
@settings(max_examples=25, deadline=None)
def test_parity_property(scenario):
    """Random topology × config × seed ⇒ identical payloads (ISSUE tentpole)."""
    topo, cfg, rate = scenario
    table = RoutingTable(UpDownRouting(topo))
    payloads = _run_all(table, lambda: UniformTraffic(topo), rate, cfg)
    _assert_three_way(payloads, f"(hypothesis: {cfg!r}, rate={rate})")


# --------------------------------------------------------------------- #
# targeted regressions
# --------------------------------------------------------------------- #


class TestLongMessages:
    """Worm tails spanning many channels (the O(1) tail-release path).

    With ``message_length >> buffer_flits`` a delivered worm's tail drains
    one channel per cycle for hundreds of cycles; the reference engine
    releases each channel with a deque ``popleft`` and the array kernels
    with sealed-drain events.  All three must agree exactly.
    """

    @pytest.mark.parametrize("vcs", [1, 2])
    def test_long_message_parity_ring(self, vcs):
        topo = ring_topology(6)
        table = RoutingTable(UpDownRouting(topo))
        cfg = SimulationConfig(message_length=256, buffer_flits=2,
                               virtual_channels=vcs,
                               warmup_cycles=0, measure_cycles=4000, seed=3)
        payloads = _run_all(
            table, lambda: UniformTraffic(topo), 0.0005, cfg)
        _assert_three_way(payloads, f"(long messages, ring, vcs={vcs})")
        ref = payloads["reference"]
        assert ref["messages_completed"] >= 1
        # A 256-flit worm takes at least 256 cycles to drain.
        assert ref["avg_latency"] > 256

    def test_long_message_parity_irregular_contended(self):
        """Long worms + contention: blocked tails held across many switches."""
        topo, table = _small_table(101)
        cfg = SimulationConfig(message_length=128, buffer_flits=1,
                               warmup_cycles=100, measure_cycles=3000,
                               seed=9)
        payloads = _run_all(
            table, lambda: UniformTraffic(topo), 0.004, cfg)
        _assert_three_way(payloads, "(long messages, contended)")
        assert payloads["reference"]["messages_completed"] >= 1


class TestStepwiseExecution:
    """step() must trace the same trajectory as run(), cycle by cycle."""

    @pytest.mark.parametrize("engine", ["fast", "batch"])
    @pytest.mark.parametrize("vcs", [1, 2])
    def test_step_matches_run_with_invariants(self, engine, vcs):
        topo, table = _small_table(23)
        cfg = SimulationConfig(message_length=16, buffer_flits=2,
                               virtual_channels=vcs,
                               warmup_cycles=100, measure_cycles=400, seed=1)
        total = cfg.warmup_cycles + cfg.measure_cycles

        stepped = make_simulator(table, UniformTraffic(topo), 0.01,
                                 replace(cfg, engine=engine))
        for cycle in range(total):
            stepped.step()
            if cycle % 50 == 0:
                stepped.check_invariants()
        assert stepped.cycle == total

        ref = make_simulator(table, UniformTraffic(topo), 0.01,
                             replace(cfg, engine="reference"))
        ref_res = ref.run()
        _assert_identical(canonical_payload(ref_res),
                          canonical_payload(stepped._result()),
                          f"(stepwise, vcs={vcs})", label=engine)

    def test_reference_step_agrees_too(self):
        topo, table = _small_table(37)
        cfg = SimulationConfig(message_length=16, buffer_flits=2,
                               warmup_cycles=50, measure_cycles=300, seed=2)
        total = cfg.warmup_cycles + cfg.measure_cycles
        ref = make_simulator(table, UniformTraffic(topo), 0.015,
                             replace(cfg, engine="reference"))
        for cycle in range(total):
            ref.step()
            if cycle % 50 == 0:
                ref.check_invariants()
        for engine in ("fast", "batch"):
            res = make_simulator(table, UniformTraffic(topo), 0.015,
                                 replace(cfg, engine=engine)).run()
            _assert_identical(canonical_payload(ref._result()),
                              canonical_payload(res),
                              "(reference stepwise)", label=engine)


class TestTraceParity:
    def test_recorded_traces_identical(self):
        """record_trace=True must yield the same (cycle, src, dst, flits)."""
        topo, table = _small_table(11)
        cfg = SimulationConfig(message_length=16, buffer_flits=2,
                               warmup_cycles=100, measure_cycles=500,
                               seed=4, record_trace=True)
        sims = {
            engine: make_simulator(table, UniformTraffic(topo), 0.01,
                                   replace(cfg, engine=engine))
            for engine in ENGINES
        }
        for sim in sims.values():
            sim.run()
        ref_trace = list(sims["reference"].trace)
        assert len(ref_trace) > 0
        assert list(sims["fast"].trace) == ref_trace
        assert list(sims["batch"].trace) == ref_trace


class TestTracingInertness:
    """Telemetry must not perturb results: tracing on ≡ tracing off.

    The ISSUE's hard constraint — spans/events/metrics never touch any
    RNG stream or canonical payload — checked over the same topology ×
    engine × seed × rate grid as the parity matrix.
    """

    @pytest.mark.parametrize("topo_seed", [11, 23, 37])
    @pytest.mark.parametrize("engine", ["reference", "fast", "batch"])
    def test_results_bit_identical_with_tracing(self, topo_seed, engine):
        topo, table = _small_table(topo_seed)
        for seed in (0, 3):
            for rate in (0.002, 0.02):
                cfg = SimulationConfig(
                    message_length=16, buffer_flits=2,
                    warmup_cycles=200, measure_cycles=800,
                    seed=seed, engine=engine,
                )
                plain = make_simulator(table, UniformTraffic(topo),
                                       rate, cfg).run()
                sink = MemorySink()
                with use_tracer(Tracer(sink)), use_registry(MetricsRegistry()):
                    traced = make_simulator(table, UniformTraffic(topo),
                                            rate, cfg).run()
                context = f"(topo={topo_seed} engine={engine} " \
                          f"seed={seed} rate={rate})"
                _assert_identical(canonical_payload(plain),
                                  canonical_payload(traced),
                                  "tracing on vs off " + context)
                # Engine-dependent meta must match too: same engine.
                assert plain.meta == traced.meta, context
                assert sink.by_name("engine.run"), "span was recorded"

    def test_traced_run_fills_registry_without_changing_perf_fields(self):
        topo, table = _small_table(11)
        cfg = SimulationConfig(message_length=16, buffer_flits=2,
                               warmup_cycles=100, measure_cycles=500,
                               seed=4, engine="fast")
        registry = MetricsRegistry()
        with use_registry(registry):
            res = make_simulator(table, UniformTraffic(topo),
                                 0.01, cfg).run()
        snap = registry.snapshot()
        assert snap["counters"]["engine.fast.runs"] == 1.0
        assert snap["counters"]["engine.fast.arb_requests"] == float(
            res.meta["arb_requests"])
        # Old fields remain the source of truth; the registry is a view.
        assert set(res.perf) == {"arrivals_seconds", "injection_seconds",
                                 "arbitration_seconds", "flit_move_seconds"}
        assert snap["histograms"]["engine.fast.arbitration_seconds"][
            "count"] == 1


class TestObservability:
    """Array-kernel results must carry the perf/observability counters."""

    @pytest.mark.parametrize("engine", ["fast", "batch"])
    def test_meta_counters(self, engine):
        topo, table = _small_table(11)
        cfg = SimulationConfig(message_length=16, buffer_flits=2,
                               warmup_cycles=100, measure_cycles=500, seed=4)
        sim = make_simulator(table, UniformTraffic(topo), 0.005,
                             replace(cfg, engine=engine))
        res = sim.run()
        meta = res.meta
        assert meta["engine"] == engine
        assert meta["cycles_executed"] + meta["cycles_skipped"] == 600
        assert 0.0 <= meta["arb_conflict_rate"] <= 1.0
        for key in ("arrivals_seconds", "injection_seconds",
                    "arbitration_seconds", "flit_move_seconds"):
            assert res.perf[key] >= 0.0

    @pytest.mark.parametrize("engine", ["fast", "batch"])
    def test_quiescence_skips_at_low_rate(self, engine):
        """At a trickle rate most cycles are provably idle and skipped."""
        topo, table = _small_table(23)
        cfg = SimulationConfig(message_length=4, buffer_flits=2,
                               warmup_cycles=0, measure_cycles=5000, seed=1)
        sim = make_simulator(table, UniformTraffic(topo), 0.0002,
                             replace(cfg, engine=engine))
        res = sim.run()
        assert res.meta["cycles_skipped"] > 0
        assert res.meta["cycles_executed"] < 5000
