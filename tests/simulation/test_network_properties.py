"""Property-based fuzzing of the simulator's conservation invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.mapping import Workload, partition_to_mapping, random_partition
from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.simulation.config import SimulationConfig
from repro.simulation.network import WormholeNetworkSimulator
from repro.simulation.traffic import IntraClusterTraffic, UniformTraffic
from repro.topology.irregular import random_irregular_topology


@st.composite
def sim_setups(draw):
    topo_seed = draw(st.integers(0, 500))
    topo = random_irregular_topology(8, seed=topo_seed)
    table = RoutingTable(UpDownRouting(topo))
    kind = draw(st.sampled_from(["uniform", "intracluster"]))
    if kind == "uniform":
        traffic = UniformTraffic(topo)
    else:
        workload = Workload.uniform(2, 16)
        part = random_partition([4, 4], 8, seed=draw(st.integers(0, 100)))
        traffic = IntraClusterTraffic(partition_to_mapping(part, workload, topo))
    cfg = SimulationConfig(
        message_length=draw(st.sampled_from([1, 2, 8, 16])),
        buffer_flits=draw(st.sampled_from([1, 2, 4])),
        adaptive=draw(st.booleans()),
        warmup_cycles=0,
        measure_cycles=120,
        queue_capacity=draw(st.sampled_from([1, 4, 16])),
        seed=draw(st.integers(0, 10_000)),
    )
    rate = draw(st.sampled_from([0.005, 0.05, 0.3]))
    return table, traffic, rate, cfg


@given(sim_setups())
@settings(max_examples=25, deadline=None)
def test_invariants_under_fuzzed_configs(setup):
    table, traffic, rate, cfg = setup
    sim = WormholeNetworkSimulator(table, traffic, rate, cfg)
    for step in range(120):
        sim.step()
        if step % 15 == 0:
            sim.check_invariants()
    sim.check_invariants()


@given(sim_setups())
@settings(max_examples=15, deadline=None)
def test_drain_after_source_stop(setup):
    """Whatever the configuration, the network must fully drain once the
    sources stop — the operational form of deadlock freedom."""
    table, traffic, rate, cfg = setup
    sim = WormholeNetworkSimulator(table, traffic, rate, cfg)
    for _ in range(100):
        sim.step()
    sim._host_rate = {h: 0.0 for h in sim._host_rate}
    sim._arrivals = []
    for q in sim.queues.values():
        q.clear()
    for _ in range(5000):
        sim.step()
        if not sim.active:
            break
    assert not sim.active, "wormhole network failed to drain: deadlock?"
    assert all(o is None for o in sim.owner)
