"""Batch-engine specifics: composition invariance, heterogeneity, errors.

The three-way payload parity of the batch kernel against the reference is
covered by ``test_engine_parity.py``; this file pins the properties that
only exist once several replications share one kernel:

- **composition invariance** — a member's result must not depend on which
  other members ride in the batch: one batch ≡ singleton batches ≡ any
  shuffled order (catches RNG-stream or active-mask cross-talk);
- **heterogeneous batches** — members may differ in message length, rate,
  buffer depth, warmup/measure windows (so replications retire early) and
  traffic pattern, and each must still match its solo run;
- **compatibility errors** — mixed routing tables or mixed virtual-channel
  counts must fail loudly, not silently desynchronize.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import canonical_payload, make_simulator
from repro.simulation.engine_batch import (
    BatchCompatibilityError,
    check_batch_compatible,
    simulate_batch,
)
from repro.simulation.traffic import UniformTraffic
from repro.topology.irregular import random_irregular_topology


def _network(topo_seed=11, switches=8):
    topo = random_irregular_topology(switches, degree=3, hosts_per_switch=2,
                                     seed=topo_seed)
    return topo, RoutingTable(UpDownRouting(topo))


def _cfg(**kw):
    base = dict(message_length=16, buffer_flits=2, warmup_cycles=150,
                measure_cycles=600, seed=0, engine="batch")
    base.update(kw)
    return SimulationConfig(**base)


def _payloads(results):
    return [canonical_payload(r) for r in results]


# --------------------------------------------------------------------- #
# composition invariance
# --------------------------------------------------------------------- #


class TestCompositionInvariance:
    @given(
        seeds=st.lists(st.integers(0, 10_000), min_size=2, max_size=5,
                       unique=True),
        rate=st.sampled_from([0.002, 0.01, 0.03]),
        topo_seed=st.integers(0, 1_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_batch_equals_singletons_equals_shuffled(self, seeds, rate,
                                                     topo_seed):
        """One batch, singleton batches and a shuffled batch all agree."""
        topo, table = _network(topo_seed)
        jobs = [(table, UniformTraffic(topo), rate, _cfg(seed=s))
                for s in seeds]

        joint = _payloads(simulate_batch(jobs))
        solo = [_payloads(simulate_batch([job]))[0] for job in jobs]
        shuffled_jobs = list(reversed(jobs))
        shuffled = _payloads(simulate_batch(shuffled_jobs))

        assert joint == solo
        assert shuffled == list(reversed(joint))

    def test_batch_member_equals_make_simulator_run(self):
        """simulate_batch members ≡ the batch-of-one engine seam."""
        topo, table = _network()
        jobs = [(table, UniformTraffic(topo), 0.01, _cfg(seed=s))
                for s in (1, 2, 3)]
        batched = _payloads(simulate_batch(jobs))
        for (t, _tr, rate, cfg), payload in zip(jobs, batched):
            solo = make_simulator(t, UniformTraffic(topo), rate, cfg).run()
            assert canonical_payload(solo) == payload


# --------------------------------------------------------------------- #
# heterogeneous batches
# --------------------------------------------------------------------- #


class TestHeterogeneousBatches:
    def test_mixed_lengths_rates_and_windows_match_solo(self):
        """Members differing in every compatible knob still match solo runs.

        The third member's window is much shorter, so it retires early and
        the active-mask must keep advancing the others untouched.
        """
        topo, table = _network(23)
        jobs = [
            (table, UniformTraffic(topo), 0.002,
             _cfg(seed=5, message_length=4, buffer_flits=1)),
            (table, UniformTraffic(topo), 0.02,
             _cfg(seed=6, message_length=64, buffer_flits=4,
                  queue_capacity=8)),
            (table, UniformTraffic(topo), 0.01,
             _cfg(seed=7, warmup_cycles=20, measure_cycles=80)),
            (table, UniformTraffic(topo), 0.01,
             _cfg(seed=8, warmup_cycles=0, measure_cycles=2000,
                  adaptive=False, record_trace=True)),
        ]
        batched = simulate_batch(jobs)
        for (t, _tr, rate, cfg), res in zip(jobs, batched):
            solo = make_simulator(t, UniformTraffic(topo), rate,
                                  replace(cfg, engine="reference")).run()
            assert canonical_payload(res) == canonical_payload(solo)
            assert res.meta["engine"] == "batch"

    def test_early_terminating_member_keeps_counters_separate(self):
        topo, table = _network(37)
        short = _cfg(seed=1, warmup_cycles=10, measure_cycles=40)
        long = _cfg(seed=1, warmup_cycles=150, measure_cycles=600)
        res_short, res_long = simulate_batch([
            (table, UniformTraffic(topo), 0.02, short),
            (table, UniformTraffic(topo), 0.02, long),
        ])
        assert res_short.cycles_measured == 40
        assert res_long.cycles_measured == 600
        total_short = res_short.meta["cycles_executed"] \
            + res_short.meta["cycles_skipped"]
        total_long = res_long.meta["cycles_executed"] \
            + res_long.meta["cycles_skipped"]
        assert total_short == 50
        assert total_long == 750

    def test_multi_vc_batch_uses_fallback_and_still_matches(self):
        """vcs > 1 batches fall back to the budgeted kernel, relabelled."""
        topo, table = _network(11)
        jobs = [(table, UniformTraffic(topo), 0.01,
                 _cfg(seed=s, virtual_channels=2)) for s in (1, 2)]
        results = simulate_batch(jobs)
        for (t, _tr, rate, cfg), res in zip(jobs, results):
            assert res.meta["engine"] == "batch"
            solo = make_simulator(t, UniformTraffic(topo), rate,
                                  replace(cfg, engine="fast")).run()
            assert canonical_payload(res) == canonical_payload(solo)


# --------------------------------------------------------------------- #
# compatibility errors
# --------------------------------------------------------------------- #


class TestCompatibilityErrors:
    def test_empty_batch_rejected(self):
        with pytest.raises(BatchCompatibilityError, match="at least one"):
            simulate_batch([])

    def test_mixed_routing_tables_rejected(self):
        topo_a, table_a = _network(11)
        topo_b, table_b = _network(12)
        jobs = [
            (table_a, UniformTraffic(topo_a), 0.01, _cfg(seed=1)),
            (table_b, UniformTraffic(topo_b), 0.01, _cfg(seed=2)),
        ]
        with pytest.raises(BatchCompatibilityError,
                           match="share one RoutingTable"):
            simulate_batch(jobs)

    def test_same_topology_different_table_object_rejected(self):
        """Even an equal table is rejected — sharing must be by identity."""
        topo, table = _network(11)
        other = RoutingTable(UpDownRouting(topo))
        jobs = [
            (table, UniformTraffic(topo), 0.01, _cfg(seed=1)),
            (other, UniformTraffic(topo), 0.01, _cfg(seed=2)),
        ]
        with pytest.raises(BatchCompatibilityError, match="job 1"):
            check_batch_compatible(jobs)

    def test_mixed_virtual_channels_rejected(self):
        topo, table = _network(11)
        jobs = [
            (table, UniformTraffic(topo), 0.01,
             _cfg(seed=1, virtual_channels=1)),
            (table, UniformTraffic(topo), 0.01,
             _cfg(seed=2, virtual_channels=2)),
        ]
        with pytest.raises(BatchCompatibilityError,
                           match="virtual_channels"):
            simulate_batch(jobs)

    def test_single_member_batch_is_fine(self):
        topo, table = _network(11)
        (res,) = simulate_batch(
            [(table, UniformTraffic(topo), 0.01, _cfg(seed=4))])
        assert res.messages_generated > 0
