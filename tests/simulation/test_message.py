"""Tests for the Message (worm) record."""

import pytest

from repro.routing.base import Phase
from repro.simulation.message import Message


@pytest.fixture
def msg():
    return Message(mid=7, src_host=1, dst_host=9, src_switch=0,
                   dst_switch=2, length=16, generated_at=100)


class TestMessage:
    def test_initial_state(self, msg):
        assert msg.to_inject == 16
        assert msg.consumed == 0
        assert msg.in_network == 0
        assert not msg.done
        assert msg.phase == Phase.UP
        assert msg.head_switch == 0

    def test_in_network_accounting(self, msg):
        msg.to_inject = 10
        msg.consumed = 2
        assert msg.in_network == 4

    def test_done(self, msg):
        msg.consumed = 16
        msg.to_inject = 0
        assert msg.done

    def test_latency_requires_completion(self, msg):
        with pytest.raises(ValueError):
            msg.latency()
        with pytest.raises(ValueError):
            msg.total_latency()

    def test_latencies(self, msg):
        msg.injected_at = 110
        msg.completed_at = 140
        assert msg.latency() == 30
        assert msg.total_latency() == 40  # includes 10 cycles of queueing

    def test_repr_contains_route(self, msg):
        out = repr(msg)
        assert "1->9" in out and "sw 0->2" in out
