"""Tests for the online (dynamic) scheduler."""

import pytest

from repro.core.dynamic import DynamicScheduler
from repro.core.mapping import LogicalCluster
from repro.core.scheduler import CommunicationAwareScheduler
from repro.topology.irregular import random_irregular_topology


@pytest.fixture
def dyn(topo16):
    return DynamicScheduler(topo16)


def app(name, switches=4, hosts_per_switch=4):
    return LogicalCluster(name, switches * hosts_per_switch)


class TestSubmitRemove:
    def test_submit_places_disjoint(self, dyn):
        p1 = dyn.submit(app("a"), seed=0)
        p2 = dyn.submit(app("b"), seed=0)
        assert len(p1.switches) == len(p2.switches) == 4
        assert not set(p1.switches) & set(p2.switches)
        assert dyn.utilization == pytest.approx(0.5)

    def test_submit_duplicate_name_rejected(self, dyn):
        dyn.submit(app("a"), seed=0)
        with pytest.raises(ValueError, match="already resident"):
            dyn.submit(app("a"), seed=0)

    def test_submit_overflow_rejected(self, dyn):
        for name in "abcd":
            dyn.submit(app(name), seed=0)
        with pytest.raises(ValueError, match="free"):
            dyn.submit(app("e"), seed=0)

    def test_indivisible_processes_rejected(self, dyn):
        with pytest.raises(ValueError, match="multiple"):
            dyn.submit(LogicalCluster("odd", 6), seed=0)

    def test_remove_frees_switches(self, dyn):
        p = dyn.submit(app("a"), seed=0)
        dyn.remove("a")
        assert dyn.utilization == 0.0
        assert set(p.switches).issubset(dyn.free_switches)

    def test_remove_unknown_rejected(self, dyn):
        with pytest.raises(KeyError):
            dyn.remove("ghost")

    def test_resubmit_after_remove(self, dyn):
        dyn.submit(app("a"), seed=0)
        dyn.remove("a")
        dyn.submit(app("a"), seed=0)
        assert "a" in dyn.placements

    def test_full_machine(self, dyn):
        for name in "abcd":
            dyn.submit(app(name), seed=0)
        assert dyn.utilization == 1.0
        assert dyn.free_switches == []

    def test_single_switch_app(self, dyn):
        p = dyn.submit(app("tiny", switches=1), seed=0)
        assert len(p.switches) == 1
        assert p.local_cost == 0.0


class TestPlacementQuality:
    def test_first_arrival_is_compact(self, topo16, dyn):
        """On an empty machine the first placement should be near the
        quality of the static scheduler's per-cluster placement."""
        p = dyn.submit(app("a"), seed=0)
        # Compare local cost against random 4-subsets.
        import numpy as np

        from repro.core.quality import QualityEvaluator

        ev = QualityEvaluator(dyn.scheduler.table)
        rng = np.random.default_rng(0)
        random_costs = []
        for _ in range(200):
            subset = rng.choice(16, size=4, replace=False)
            random_costs.append(
                float(ev.sq[np.ix_(subset, subset)].sum() / 2.0)
            )
        assert p.local_cost <= min(random_costs) * 1.05

    def test_sequential_fill_reasonable(self, dyn, scheduler16, workload16):
        """Filling the machine app-by-app is worse than the static optimum
        (the last arrival gets the leftovers) but clearly better than
        random placement (F_G ~ 1)."""
        for name in "abcd":
            dyn.submit(app(name), seed=0)
        online = dyn.scores()["F_G"]
        static = scheduler16.schedule(workload16, seed=0).f_g
        assert static <= online < 0.8

    def test_current_partition_consistent(self, dyn):
        dyn.submit(app("a"), seed=0)
        dyn.submit(app("b"), seed=0)
        part = dyn.current_partition()
        assert part.sizes() == [4, 4]
        assert set(part.clusters()[0]) == set(dyn.placements["a"].switches)


class TestRebalance:
    def test_rebalance_improves_after_churn(self, dyn):
        # Create fragmentation: fill, remove two non-adjacent apps, refill.
        for name in "abcd":
            dyn.submit(app(name), seed=0)
        dyn.remove("b")
        dyn.remove("d")
        dyn.submit(app("e", switches=8), seed=0)  # forced onto fragments
        out = dyn.rebalance(seed=1)
        assert out["optimized_f_g"] <= out["incumbent_f_g"] + 1e-12
        assert out["improvement"] >= -1e-12

    def test_rebalance_empty_rejected(self, dyn):
        with pytest.raises(ValueError, match="nothing to rebalance"):
            dyn.rebalance()

    def test_apply_rebalance_updates_scores(self, dyn):
        for name in "abcd":
            dyn.submit(app(name), seed=0)
        dyn.remove("a")
        dyn.submit(app("e"), seed=3)
        out = dyn.rebalance(seed=1)
        dyn.apply_rebalance(out["partition"])
        assert dyn.scores()["F_G"] == pytest.approx(out["optimized_f_g"])
        # Ownership stays a partition: every switch owned exactly once.
        owned = [s for p in dyn.placements.values() for s in p.switches]
        assert len(owned) == len(set(owned)) == 16

    def test_apply_rebalance_validates_sizes(self, dyn):
        dyn.submit(app("a"), seed=0)
        dyn.submit(app("b"), seed=0)
        from repro.core.mapping import random_partition

        wrong = random_partition([2, 6], 16, seed=0)
        with pytest.raises(ValueError, match="size mismatch"):
            dyn.apply_rebalance(wrong)


class TestConstruction:
    def test_shared_scheduler(self, topo16):
        base = CommunicationAwareScheduler(topo16)
        dyn = DynamicScheduler(topo16, scheduler=base)
        assert dyn.scheduler is base

    def test_topology_mismatch_rejected(self, topo16):
        other = random_irregular_topology(16, seed=999)
        base = CommunicationAwareScheduler(other)
        with pytest.raises(ValueError, match="different topology"):
            DynamicScheduler(topo16, scheduler=base)

    def test_deterministic(self, topo16):
        def run():
            d = DynamicScheduler(topo16)
            d.submit(app("a"), seed=5)
            d.submit(app("b"), seed=5)
            return tuple(sorted(
                (n, p.switches) for n, p in d.placements.items()
            ))

        assert run() == run()
