"""Tests for workloads, partitions and process mappings."""

import numpy as np
import pytest

from repro.core.mapping import (
    LogicalCluster,
    Partition,
    ProcessMapping,
    Workload,
    partition_to_mapping,
    random_partition,
)


class TestLogicalCluster:
    def test_valid(self):
        c = LogicalCluster("app", 16)
        assert c.num_processes == 16 and c.comm_weight == 1.0

    def test_zero_processes_rejected(self):
        with pytest.raises(ValueError):
            LogicalCluster("app", 0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            LogicalCluster("app", 4, comm_weight=-1)


class TestWorkload:
    def test_uniform(self):
        w = Workload.uniform(4, 16)
        assert w.num_clusters == 4 and w.total_processes == 64

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Workload([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Workload([LogicalCluster("a", 4), LogicalCluster("a", 4)])

    def test_switch_quota(self, topo16):
        w = Workload.uniform(4, 16)
        assert w.switch_quota(topo16) == [4, 4, 4, 4]

    def test_quota_indivisible_rejected(self, topo16):
        w = Workload([LogicalCluster("a", 6)])  # not a multiple of 4
        with pytest.raises(ValueError, match="multiple"):
            w.switch_quota(topo16)

    def test_quota_overflow_rejected(self, topo16):
        w = Workload([LogicalCluster("a", 4 * 17)])
        with pytest.raises(ValueError, match="switches"):
            w.switch_quota(topo16)

    def test_partial_machine_ok(self, topo16):
        w = Workload.uniform(2, 8)  # 4 switches of 16 used
        assert w.switch_quota(topo16) == [2, 2]

    def test_repr(self):
        assert "app0:8" in repr(Workload.uniform(1, 8))


class TestPartition:
    def test_from_labels(self):
        p = Partition([0, 0, 1, 1])
        assert p.num_clusters == 2
        assert p.clusters() == [(0, 1), (2, 3)]
        assert p.sizes() == [2, 2]

    def test_unassigned_allowed(self):
        p = Partition([0, -1, 0, 1])
        assert p.sizes() == [2, 1]
        assert list(p.assigned_switches()) == [0, 2, 3]

    def test_non_consecutive_labels_rejected(self):
        with pytest.raises(ValueError, match="consecutive"):
            Partition([0, 2, 2, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Partition([])

    def test_from_clusters(self):
        p = Partition.from_clusters([(5, 6), (0, 1)], 8)
        assert p.labels[5] == 0 and p.labels[0] == 1
        assert p.labels[7] == -1

    def test_from_clusters_overlap_rejected(self):
        with pytest.raises(ValueError, match="two clusters"):
            Partition.from_clusters([(0, 1), (1, 2)], 4)

    def test_from_clusters_range_checked(self):
        with pytest.raises(ValueError):
            Partition.from_clusters([(0, 9)], 4)

    def test_canonical_key_label_invariant(self):
        a = Partition([0, 0, 1, 1])
        b = Partition([1, 1, 0, 0])
        assert a.canonical_key() == b.canonical_key()
        assert a == b and hash(a) == hash(b)

    def test_inequality(self):
        assert Partition([0, 0, 1, 1]) != Partition([0, 1, 0, 1])

    def test_with_swap(self):
        p = Partition([0, 0, 1, 1])
        q = p.with_swap(1, 2)
        assert q.clusters() == [(0, 2), (1, 3)]
        # original untouched
        assert p.clusters() == [(0, 1), (2, 3)]

    def test_labels_readonly(self):
        p = Partition([0, 1])
        with pytest.raises(ValueError):
            p.labels[0] = 1

    def test_repr(self):
        assert "(0,1)" in repr(Partition([0, 0]))


class TestRandomPartition:
    def test_sizes_respected(self):
        p = random_partition([4, 4, 4, 4], 16, seed=0)
        assert p.sizes() == [4, 4, 4, 4]

    def test_partial(self):
        p = random_partition([2, 3], 10, seed=1)
        assert p.sizes() == [2, 3]
        assert (p.labels == -1).sum() == 5

    def test_reproducible(self):
        a = random_partition([4, 4], 8, seed=5)
        b = random_partition([4, 4], 8, seed=5)
        assert (a.labels == b.labels).all()

    def test_varies_with_seed(self):
        keys = {random_partition([4, 4], 8, seed=s).canonical_key()
                for s in range(20)}
        assert len(keys) > 1

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            random_partition([5, 5], 8)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            random_partition([0, 4], 8)

    def test_uniformity_smoke(self):
        # Each switch should land in cluster 0 roughly equally often.
        counts = np.zeros(8)
        trials = 400
        for s in range(trials):
            p = random_partition([4, 4], 8, seed=s)
            counts += (p.labels == 0)
        assert (counts / trials > 0.3).all() and (counts / trials < 0.7).all()


class TestProcessMapping:
    def test_partition_roundtrip(self, topo16, workload16):
        part = random_partition([4, 4, 4, 4], 16, seed=3)
        mapping = partition_to_mapping(part, workload16, topo16)
        assert mapping.induced_partition() == part

    def test_validate_complete(self, topo16, workload16):
        part = random_partition([4, 4, 4, 4], 16, seed=3)
        mapping = partition_to_mapping(part, workload16, topo16)
        mapping.validate()

    def test_one_process_per_host(self, topo16, workload16):
        part = random_partition([4, 4, 4, 4], 16, seed=4)
        mapping = partition_to_mapping(part, workload16, topo16)
        hosts = list(mapping.host_of.values())
        assert len(set(hosts)) == len(hosts) == 64

    def test_capacity_mismatch_rejected(self, topo16):
        w = Workload.uniform(4, 16)
        bad = random_partition([5, 4, 4, 3], 16, seed=0)  # sizes don't match
        with pytest.raises(ValueError):
            partition_to_mapping(bad, w, topo16)

    def test_cluster_count_mismatch_rejected(self, topo16):
        w = Workload.uniform(3, 16)
        part = random_partition([4, 4, 4, 4], 16, seed=0)
        with pytest.raises(ValueError, match="clusters"):
            partition_to_mapping(part, w, topo16)

    def test_impure_switch_rejected(self, topo16, workload16):
        part = random_partition([4, 4, 4, 4], 16, seed=3)
        mapping = partition_to_mapping(part, workload16, topo16)
        # Force two apps onto one switch by swapping hosts across clusters.
        items = sorted(mapping.host_of.items())
        k1, h1 = items[0]
        k2, h2 = next((k, h) for k, h in items if k[0] != k1[0])
        mapping.host_of[k1], mapping.host_of[k2] = h2, h1
        with pytest.raises(ValueError, match="induced partition undefined"):
            mapping.induced_partition()

    def test_incomplete_mapping_rejected(self, topo16, workload16):
        m = ProcessMapping(workload16, topo16)
        with pytest.raises(ValueError, match="incomplete"):
            m.validate()

    def test_cluster_of_host(self, topo16, workload16):
        part = random_partition([4, 4, 4, 4], 16, seed=3)
        mapping = partition_to_mapping(part, workload16, topo16)
        c_of_h = mapping.cluster_of_host()
        assert len(c_of_h) == 64
        for (ci, _pi), h in mapping.host_of.items():
            assert c_of_h[h] == ci
