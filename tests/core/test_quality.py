"""Tests for the paper's quality functions (eqs. 1-5 and C_c)."""

import numpy as np
import pytest

from repro.core.mapping import Partition, Workload, partition_to_mapping, random_partition
from repro.core.quality import (
    QualityEvaluator,
    cluster_dissimilarity,
    cluster_similarity,
    clustering_coefficient,
    dissimilarity_global,
    similarity_global,
    weighted_mapping_cost,
)


@pytest.fixture
def tiny_table():
    """4 nodes: two tight pairs (0,1) and (2,3), far from each other."""
    t = np.array([
        [0, 1, 5, 5],
        [1, 0, 5, 5],
        [5, 5, 0, 1],
        [5, 5, 1, 0],
    ], dtype=float)
    return t


class TestClusterFunctions:
    def test_cluster_similarity_eq1(self, tiny_table):
        # F_A for cluster {0,1}: single pair at distance 1 -> 1^2 = 1.
        assert cluster_similarity(tiny_table, [0, 1]) == 1.0
        # Cluster {0,2}: distance 5 -> 25.
        assert cluster_similarity(tiny_table, [0, 2]) == 25.0
        # Three nodes {0,1,2}: 1 + 25 + 25.
        assert cluster_similarity(tiny_table, [0, 1, 2]) == 51.0

    def test_cluster_similarity_singleton(self, tiny_table):
        assert cluster_similarity(tiny_table, [3]) == 0.0

    def test_cluster_dissimilarity_eq4(self, tiny_table):
        p = Partition([0, 0, 1, 1])
        # D_A0 = sum of squared distances from {0,1} to {2,3} = 4 * 25.
        assert cluster_dissimilarity(tiny_table, p, 0) == 100.0
        assert cluster_dissimilarity(tiny_table, p, 1) == 100.0


class TestGlobalFunctions:
    def test_good_partition_f_below_1(self, tiny_table):
        good = Partition([0, 0, 1, 1])
        bad = Partition([0, 1, 0, 1])
        f_good = similarity_global(tiny_table, good)
        f_bad = similarity_global(tiny_table, bad)
        assert f_good < 1.0 < f_bad
        # Closed form: norm = (1+25*4+1)/6 = 17.67; F numerator good: (1+1)/2 pairs...
        # good: sum F_Ai = 1 + 1 = 2 over 2 pairs = 1; F_G = 1 / norm.
        norm = (1 + 1 + 25 * 4) / 6
        assert f_good == pytest.approx(1.0 / norm)
        assert f_bad == pytest.approx(25.0 / norm)

    def test_d_g_eq5_closed_form(self, tiny_table):
        good = Partition([0, 0, 1, 1])
        norm = (1 + 1 + 25 * 4) / 6
        # sum D_Ai = 200, intercluster count = 2*(4-2)*2 = 8.
        assert dissimilarity_global(tiny_table, good) == pytest.approx(
            (200 / 8) / norm
        )

    def test_c_c_is_ratio(self, tiny_table):
        p = Partition([0, 0, 1, 1])
        assert clustering_coefficient(tiny_table, p) == pytest.approx(
            dissimilarity_global(tiny_table, p) / similarity_global(tiny_table, p)
        )

    def test_c_c_single_pass_matches_two_call_path(self, table16):
        # clustering_coefficient derives both quadratic sums from one
        # ``sq @ z`` product; it must agree with the explicit
        # dissimilarity/similarity composition on every partition.
        ev = QualityEvaluator(table16)
        for s in range(100):
            p = random_partition([4] * 4, 16, seed=s)
            assert ev.clustering_coefficient(p) == pytest.approx(
                ev.dissimilarity(p) / ev.similarity(p), rel=1e-12
            )

    def test_c_c_single_pass_uneven_clusters(self, table16):
        ev = QualityEvaluator(table16)
        for s in range(50):
            p = random_partition([2, 3, 5, 6], 16, seed=1000 + s)
            assert ev.clustering_coefficient(p) == pytest.approx(
                ev.dissimilarity(p) / ev.similarity(p), rel=1e-12
            )

    def test_c_c_single_pass_error_messages(self, tiny_table):
        ev = QualityEvaluator(tiny_table)
        with pytest.raises(ValueError, match="F_G undefined"):
            ev.clustering_coefficient(Partition([0, 1, 2, 3]))
        with pytest.raises(ValueError, match="D_G undefined"):
            ev.clustering_coefficient(Partition([0, 0, 0, 0]))

    def test_all_singletons_f_undefined(self, tiny_table):
        p = Partition([0, 1, 2, 3])
        with pytest.raises(ValueError, match="F_G undefined"):
            similarity_global(tiny_table, p)

    def test_single_full_cluster_d_undefined(self, tiny_table):
        p = Partition([0, 0, 0, 0])
        with pytest.raises(ValueError, match="D_G undefined"):
            dissimilarity_global(tiny_table, p)

    def test_random_mapping_f_near_1(self, table16):
        # E[F_G] over random partitions is exactly 1 by construction.
        vals = [
            similarity_global(table16, random_partition([4] * 4, 16, seed=s))
            for s in range(200)
        ]
        assert np.mean(vals) == pytest.approx(1.0, abs=0.05)

    def test_random_mapping_d_near_1(self, table16):
        vals = [
            dissimilarity_global(table16, random_partition([4] * 4, 16, seed=s))
            for s in range(200)
        ]
        assert np.mean(vals) == pytest.approx(1.0, abs=0.02)

    def test_label_permutation_invariance(self, table16):
        p = random_partition([4] * 4, 16, seed=9)
        relabeled = Partition((p.labels + 1) % 4)
        ev = QualityEvaluator(table16)
        assert ev.similarity(p) == pytest.approx(ev.similarity(relabeled))
        assert ev.dissimilarity(p) == pytest.approx(ev.dissimilarity(relabeled))

    def test_accepts_distance_table_object(self, table16):
        p = random_partition([4] * 4, 16, seed=1)
        assert similarity_global(table16, p) == pytest.approx(
            similarity_global(table16.values, p)
        )


class TestEvaluator:
    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            QualityEvaluator(np.zeros((1, 1)))

    def test_degenerate_zero_table_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            QualityEvaluator(np.zeros((4, 4)))

    def test_intracluster_sum_matches_bruteforce(self, table16):
        ev = QualityEvaluator(table16)
        p = random_partition([4] * 4, 16, seed=11)
        sq = table16.squared()
        brute = sum(
            sq[i, j]
            for members in p.clusters()
            for ai, i in enumerate(members)
            for j in members[ai + 1:]
        )
        assert ev.intracluster_sum(p) == pytest.approx(brute)

    def test_intercluster_sum_matches_bruteforce(self, table16):
        ev = QualityEvaluator(table16)
        p = random_partition([4] * 4, 16, seed=12)
        sq = table16.squared()
        labels = p.labels
        brute = sum(
            sq[i, j]
            for i in range(16)
            for j in range(16)
            if labels[i] >= 0 and i != j and labels[j] != labels[i]
        )
        assert ev.intercluster_sum(p) == pytest.approx(brute)

    def test_partition_size_mismatch(self, table16):
        with pytest.raises(ValueError):
            QualityEvaluator(table16).similarity(Partition([0, 0]))


class TestSwapDelta:
    def test_delta_matches_recompute(self, table16):
        ev = QualityEvaluator(table16)
        p = random_partition([4] * 4, 16, seed=13)
        labels = np.array(p.labels)
        g = ev.cluster_load_matrix(p)
        base = ev.intracluster_sum(p)
        for a in range(16):
            for b in range(a + 1, 16):
                if labels[a] == labels[b]:
                    continue
                delta = ev.swap_delta_raw(labels, g, a, b)
                swapped = p.with_swap(a, b)
                assert base + delta == pytest.approx(
                    ev.intracluster_sum(swapped)
                ), f"swap ({a},{b})"

    def test_same_cluster_swap_is_noop(self, table16):
        ev = QualityEvaluator(table16)
        p = random_partition([4] * 4, 16, seed=14)
        labels = np.array(p.labels)
        g = ev.cluster_load_matrix(p)
        members = p.clusters()[0]
        assert ev.swap_delta_raw(labels, g, members[0], members[1]) == 0.0

    def test_apply_swap_consistency(self, table16):
        ev = QualityEvaluator(table16)
        p = random_partition([4] * 4, 16, seed=15)
        labels = np.array(p.labels)
        g = ev.cluster_load_matrix(p)
        # Apply a chain of swaps and verify g stays consistent.
        rng = np.random.default_rng(0)
        for _ in range(25):
            a, b = rng.integers(0, 16, size=2)
            if labels[a] == labels[b]:
                continue
            ev.apply_swap(labels, g, int(a), int(b))
        fresh = ev.cluster_load_matrix(Partition(labels))
        assert np.allclose(g, fresh)


class TestWeightedCost:
    def test_reduces_to_paper_objective(self, topo16, table16, workload16):
        # With unit weights, the weighted cost equals the raw intracluster
        # sum expanded to the process level: each switch pair (distance T)
        # hosts 4x4 process pairs, and same-switch pairs contribute 0.
        part = random_partition([4] * 4, 16, seed=20)
        mapping = partition_to_mapping(part, workload16, topo16)
        cost = weighted_mapping_cost(table16, mapping)
        ev = QualityEvaluator(table16)
        assert cost == pytest.approx(16 * ev.intracluster_sum(part))

    def test_weight_scaling(self, topo16, table16):
        from repro.core.mapping import LogicalCluster

        w = Workload([
            LogicalCluster("a", 32, comm_weight=2.0),
            LogicalCluster("b", 32, comm_weight=1.0),
        ])
        part = random_partition([8, 8], 16, seed=21)
        mapping = partition_to_mapping(part, w, topo16)
        cost = weighted_mapping_cost(table16, mapping)
        assert cost > 0
        # Doubling one cluster's weight quadruples its pair weights; the
        # total must exceed the unweighted equivalent.
        w_unit = Workload.uniform(2, 32)
        mapping_unit = partition_to_mapping(part, w_unit, topo16)
        assert cost > weighted_mapping_cost(table16, mapping_unit)

    def test_explicit_weights_validated(self, topo16, table16, workload16):
        part = random_partition([4] * 4, 16, seed=22)
        mapping = partition_to_mapping(part, workload16, topo16)
        with pytest.raises(ValueError, match="weights"):
            weighted_mapping_cost(table16, mapping, weights=np.ones((3, 3)))

    def test_asymmetric_weights_rejected(self, topo16, table16, workload16):
        part = random_partition([4] * 4, 16, seed=23)
        mapping = partition_to_mapping(part, workload16, topo16)
        w = np.ones((64, 64))
        w[0, 1] = 2.0
        with pytest.raises(ValueError, match="symmetric"):
            weighted_mapping_cost(table16, mapping, weights=w)
