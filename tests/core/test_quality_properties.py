"""Property-based tests for the quality functions (hypothesis)."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core.mapping import Partition, random_partition
from repro.core.quality import QualityEvaluator


@st.composite
def tables_and_partitions(draw):
    """A random symmetric distance table plus a fixed-size partition."""
    n = draw(st.sampled_from([6, 8, 10, 12]))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    t = rng.uniform(0.5, 5.0, size=(n, n))
    t = 0.5 * (t + t.T)
    np.fill_diagonal(t, 0.0)
    m = draw(st.sampled_from([2, 3]))
    size = n // m
    assume(size >= 2)
    sizes = [size] * m
    part = random_partition(sizes, n, seed=draw(st.integers(0, 10_000)))
    return t, part


@given(tables_and_partitions())
@settings(max_examples=60, deadline=None)
def test_quality_functions_positive(tp):
    t, part = tp
    ev = QualityEvaluator(t)
    assert ev.similarity(part) > 0
    assert ev.dissimilarity(part) > 0
    assert ev.clustering_coefficient(part) > 0


@given(tables_and_partitions())
@settings(max_examples=60, deadline=None)
def test_similarity_plus_dissimilarity_conservation(tp):
    """Raw intra + inter sums account for every off-diagonal entry once
    (intra pairs once each, inter ordered pairs once each)."""
    t, part = tp
    ev = QualityEvaluator(t)
    sq = np.asarray(t) ** 2
    if (part.labels >= 0).all():
        total = ev.intracluster_sum(part) * 2 + ev.intercluster_sum(part)
        assert np.isclose(total, sq.sum())


@given(tables_and_partitions())
@settings(max_examples=40, deadline=None)
def test_scaling_invariance_of_normalized_functions(tp):
    """F_G, D_G and C_c are invariant under uniform distance scaling."""
    t, part = tp
    ev1 = QualityEvaluator(t)
    ev2 = QualityEvaluator(3.7 * np.asarray(t))
    assert np.isclose(ev1.similarity(part), ev2.similarity(part))
    assert np.isclose(ev1.dissimilarity(part), ev2.dissimilarity(part))
    assert np.isclose(
        ev1.clustering_coefficient(part), ev2.clustering_coefficient(part)
    )


@given(tables_and_partitions(), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_swap_delta_agrees_with_full_recompute(tp, seed):
    t, part = tp
    ev = QualityEvaluator(t)
    labels = np.array(part.labels)
    g = ev.cluster_load_matrix(part)
    rng = np.random.default_rng(seed)
    n = labels.size
    a, b = rng.integers(0, n, size=2)
    assume(labels[a] >= 0 and labels[b] >= 0 and labels[a] != labels[b])
    delta = ev.swap_delta_raw(labels, g, int(a), int(b))
    before = ev.intracluster_sum(Partition(labels))
    after = ev.intracluster_sum(part.with_swap(int(a), int(b)))
    assert np.isclose(before + delta, after)


@given(tables_and_partitions())
@settings(max_examples=40, deadline=None)
def test_expected_f_g_of_random_partition_is_one(tp):
    """Averaged over many random partitions of the same sizes, F_G -> 1."""
    t, part = tp
    ev = QualityEvaluator(t)
    sizes = part.sizes()
    n = part.num_switches
    vals = [
        ev.similarity(random_partition(sizes, n, seed=s)) for s in range(120)
    ]
    assert abs(float(np.mean(vals)) - 1.0) < 0.12
