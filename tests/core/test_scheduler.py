"""Tests for the CommunicationAwareScheduler facade."""

import pytest

from repro.core.mapping import Partition, Workload
from repro.core.scheduler import CommunicationAwareScheduler
from repro.distance.table import hop_distance_table
from repro.routing.minimal import MinimalRouting
from repro.routing.updown import UpDownRouting
from repro.search.random_search import RandomSearch
from repro.topology.irregular import random_irregular_topology


class TestConstruction:
    def test_defaults(self, topo16):
        s = CommunicationAwareScheduler(topo16)
        assert s.routing.name == "updown"
        assert s.table.kind == "equivalent"
        assert s.search.name == "tabu"

    def test_custom_routing(self, topo16):
        s = CommunicationAwareScheduler(topo16, routing=MinimalRouting(topo16))
        assert s.routing.name == "minimal"

    def test_routing_topology_mismatch_rejected(self, topo16):
        other = random_irregular_topology(16, seed=777)
        with pytest.raises(ValueError, match="different topology"):
            CommunicationAwareScheduler(topo16, routing=UpDownRouting(other))

    def test_table_size_mismatch_rejected(self, topo16, topo8):
        bad_table = hop_distance_table(UpDownRouting(topo8))
        with pytest.raises(ValueError, match="table covers"):
            CommunicationAwareScheduler(topo16, table=bad_table)


class TestSchedule:
    def test_schedule_beats_random(self, scheduler16, workload16):
        op = scheduler16.schedule(workload16, seed=1)
        rand = [scheduler16.random_schedule(workload16, seed=s)
                for s in range(10)]
        assert all(op.f_g <= r.f_g for r in rand)
        assert all(op.c_c >= r.c_c for r in rand)

    def test_deterministic_given_seed(self, scheduler16, workload16):
        a = scheduler16.schedule(workload16, seed=5)
        b = scheduler16.schedule(workload16, seed=5)
        assert a.partition == b.partition
        assert a.f_g == b.f_g

    def test_result_fields_consistent(self, scheduler16, workload16):
        res = scheduler16.schedule(workload16, seed=2)
        scores = scheduler16.evaluate(res.partition)
        assert res.f_g == pytest.approx(scores["F_G"])
        assert res.d_g == pytest.approx(scores["D_G"])
        assert res.c_c == pytest.approx(scores["C_c"])
        assert res.c_c == pytest.approx(res.d_g / res.f_g)

    def test_mapping_expands_partition(self, scheduler16, workload16):
        res = scheduler16.schedule(workload16, seed=3)
        res.mapping.validate()
        assert res.mapping.induced_partition() == res.partition

    def test_search_trace_attached(self, scheduler16, workload16):
        res = scheduler16.schedule(workload16, seed=4)
        assert res.search is not None
        assert len(res.search.trace) > 10
        assert min(res.search.trace) == pytest.approx(res.f_g)

    def test_summary_string(self, scheduler16, workload16):
        res = scheduler16.schedule(workload16, seed=1)
        s = res.summary()
        assert "F_G=" in s and "C_c=" in s

    def test_warm_start(self, scheduler16, workload16):
        base = scheduler16.schedule(workload16, seed=1)
        warm = scheduler16.schedule(workload16, seed=2,
                                    initial=base.partition)
        assert warm.f_g <= base.f_g + 1e-12

    def test_custom_search(self, topo16, workload16):
        s = CommunicationAwareScheduler(topo16, search=RandomSearch(samples=5))
        res = s.schedule(workload16, seed=0)
        assert res.search.method == "random"

    def test_random_schedule_reproducible(self, scheduler16, workload16):
        a = scheduler16.random_schedule(workload16, seed=9)
        b = scheduler16.random_schedule(workload16, seed=9)
        assert a.partition == b.partition

    def test_meta_fields(self, scheduler16, workload16):
        res = scheduler16.random_schedule(workload16, seed=0)
        assert res.meta["routing"] == "updown"
        assert res.meta["table_kind"] == "equivalent"


class TestObjective:
    def test_objective_sizes(self, scheduler16, workload16):
        obj = scheduler16.objective_for(workload16)
        assert obj.sizes == [4, 4, 4, 4]

    def test_partial_machine_workload(self, scheduler16):
        w = Workload.uniform(2, 8)  # 2 clusters x 2 switches on 16 switches
        res = scheduler16.schedule(w, seed=1)
        assert res.partition.sizes() == [2, 2]
        assert (res.partition.labels == -1).sum() == 12
