"""Tests for JSON serialization."""

import json

import numpy as np
import pytest

from repro import serialize
from repro.core.mapping import LogicalCluster, Partition, Workload
from repro.distance.table import DistanceTable
from repro.obs.manifest import RunManifest, collect_manifest
from repro.obs.schema import validate_record
from repro.obs.trace import TraceEvent
from repro.topology.designed import four_rings_topology
from repro.topology.irregular import random_irregular_topology


class TestRoundTrips:
    def test_topology(self, tmp_path):
        topo = random_irregular_topology(12, seed=9)
        path = tmp_path / "t.json"
        serialize.save(topo, path)
        loaded = serialize.load(path)
        assert loaded == topo
        assert loaded.name == topo.name

    def test_designed_topology(self, tmp_path):
        topo = four_rings_topology()
        path = tmp_path / "t.json"
        serialize.save(topo, path)
        assert serialize.load(path) == topo

    def test_distance_table(self, tmp_path, table8):
        path = tmp_path / "d.json"
        serialize.save(table8, path)
        loaded = serialize.load(path)
        assert isinstance(loaded, DistanceTable)
        assert np.allclose(loaded.values, table8.values)
        assert loaded.kind == table8.kind

    def test_partition(self, tmp_path):
        p = Partition([0, 0, 1, -1, 1])
        path = tmp_path / "p.json"
        serialize.save(p, path)
        loaded = serialize.load(path)
        assert loaded == p
        assert (loaded.labels == p.labels).all()

    def test_workload(self, tmp_path):
        w = Workload([LogicalCluster("a", 8, comm_weight=2.5),
                      LogicalCluster("b", 4)])
        path = tmp_path / "w.json"
        serialize.save(w, path)
        loaded = serialize.load(path)
        assert loaded.clusters[0].name == "a"
        assert loaded.clusters[0].comm_weight == 2.5
        assert loaded.total_processes == 12

    def test_dict_roundtrip_without_files(self):
        topo = random_irregular_topology(8, seed=0)
        assert serialize.from_dict(serialize.to_dict(topo)) == topo

    def test_trace_event_span(self, tmp_path):
        ev = TraceEvent(kind="span", name="sweep.load", t=10.0,
                        duration=1.25, span_id=4, parent_id=2,
                        attrs={"points": 9})
        path = tmp_path / "ev.json"
        serialize.save(ev, path)
        loaded = serialize.load(path)
        assert loaded == ev
        # The nested record is the exact JSONL schema form.
        d = serialize.to_dict(ev)
        assert validate_record(d["record"]) == "span"

    def test_trace_event_point(self):
        ev = TraceEvent(kind="event", name="sweep.point", t=3.0,
                        span_id=1, attrs={"rate": 0.01, "index": 1})
        d = serialize.to_dict(ev)
        assert d["type"] == "trace_event"
        assert serialize.from_dict(d) == ev
        assert validate_record(d["record"]) == "event"

    def test_run_manifest(self, tmp_path):
        m = collect_manifest("simulate", ["--seed", "7"], seed=7,
                             engine="fast", workers=2,
                             extra={"note": "roundtrip"})
        path = tmp_path / "m.json"
        serialize.save(m, path)
        loaded = serialize.load(path)
        assert isinstance(loaded, RunManifest)
        assert loaded == m
        assert validate_record(serialize.to_dict(m)["record"]) == "manifest"


class TestValidation:
    def test_unknown_type_encode(self):
        with pytest.raises(TypeError, match="cannot serialize"):
            serialize.to_dict(object())

    def test_unknown_type_decode(self):
        with pytest.raises(ValueError, match="unknown payload"):
            serialize.from_dict({"type": "mystery"})

    def test_wrong_tag_rejected(self):
        topo = random_irregular_topology(8, seed=0)
        d = serialize.to_dict(topo)
        with pytest.raises(ValueError, match="expected"):
            serialize.partition_from_dict(d)

    def test_future_version_rejected(self):
        topo = random_irregular_topology(8, seed=0)
        d = serialize.to_dict(topo)
        d["version"] = 999
        with pytest.raises(ValueError, match="version"):
            serialize.from_dict(d)

    def test_payload_is_plain_json(self, tmp_path):
        topo = random_irregular_topology(8, seed=0)
        path = tmp_path / "t.json"
        serialize.save(topo, path)
        raw = json.loads(path.read_text())
        assert raw["type"] == "topology"
        assert isinstance(raw["links"], list)


class TestServiceTypes:
    """Round-trips and strict rejection for the service's wire types."""

    @pytest.fixture()
    def request_obj(self):
        from repro.service import ScheduleRequest

        topo = random_irregular_topology(8, seed=3)
        return ScheduleRequest.build(topo, clusters=4, seed=5, priority=2)

    def test_schedule_request_round_trip(self, tmp_path, request_obj):
        path = tmp_path / "req.json"
        serialize.save(request_obj, path)
        loaded = serialize.load(path)
        assert loaded.to_dict() == request_obj.to_dict()
        assert loaded.fingerprint() == request_obj.fingerprint()

    def test_schedule_response_round_trip(self, tmp_path, request_obj):
        from repro.service import ScheduleResponse
        from repro.service.batch import execute_request

        payload = execute_request(request_obj.to_dict())
        resp = ScheduleResponse.from_dict(payload)
        path = tmp_path / "resp.json"
        serialize.save(resp, path)
        assert serialize.load(path).to_dict() == payload

    def test_service_status_round_trip(self, tmp_path):
        from repro.service import ServiceConfig, running_service

        with running_service(ServiceConfig(port=0, workers=1)) as svc:
            status = svc.status()
        path = tmp_path / "status.json"
        serialize.save(status, path)
        assert serialize.load(path).to_dict() == status.to_dict()

    def test_generic_dispatch_knows_the_new_tags(self, request_obj):
        d = serialize.to_dict(request_obj)
        assert d["type"] == "schedule_request"
        assert serialize.from_dict(d).fingerprint() \
            == request_obj.fingerprint()

    def test_malformed_request_payload_rejected(self, request_obj):
        from repro.service import ProtocolError

        d = serialize.to_dict(request_obj)
        d["method"] = "quantum"
        with pytest.raises(ProtocolError):
            serialize.from_dict(d)
        d2 = serialize.to_dict(request_obj)
        d2["extra_field"] = 1
        with pytest.raises(ProtocolError, match="unknown keys"):
            serialize.from_dict(d2)

    def test_malformed_response_payload_rejected(self, request_obj):
        from repro.service import ProtocolError
        from repro.service.batch import execute_request

        payload = execute_request(request_obj.to_dict())
        payload["partition"] = {"type": "partition"}
        with pytest.raises(ProtocolError):
            serialize.from_dict(payload)

    def test_malformed_status_payload_rejected(self):
        from repro.service import ProtocolError

        with pytest.raises(ProtocolError, match="missing"):
            serialize.from_dict({"type": "service_status"})
