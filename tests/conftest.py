"""Shared fixtures: canonical topologies, routings, tables and workloads.

Everything is seeded so failures are reproducible; fixtures that are
expensive to build (distance tables) are session-scoped.
"""

from __future__ import annotations

import pytest

from repro.core.mapping import Workload
from repro.core.scheduler import CommunicationAwareScheduler
from repro.distance.table import build_distance_table
from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.topology.designed import (
    four_rings_topology,
    mesh_topology,
    ring_topology,
)
from repro.topology.irregular import random_irregular_topology


@pytest.fixture(scope="session")
def topo16():
    """The paper's 16-switch random irregular network (fixed seed)."""
    return random_irregular_topology(16, seed=42, name="t16")


@pytest.fixture(scope="session")
def topo8():
    """A small 8-switch irregular network for exhaustive comparisons."""
    return random_irregular_topology(8, seed=7, name="t8")


@pytest.fixture(scope="session")
def topo24():
    """The designed four-ring 24-switch network."""
    return four_rings_topology()


@pytest.fixture(scope="session")
def ring6():
    return ring_topology(6)


@pytest.fixture(scope="session")
def mesh33():
    return mesh_topology(3, 3)


@pytest.fixture(scope="session")
def routing16(topo16):
    return UpDownRouting(topo16)


@pytest.fixture(scope="session")
def routing8(topo8):
    return UpDownRouting(topo8)


@pytest.fixture(scope="session")
def table16(routing16):
    return build_distance_table(routing16)


@pytest.fixture(scope="session")
def table8(routing8):
    return build_distance_table(routing8)


@pytest.fixture(scope="session")
def rtable16(routing16):
    return RoutingTable(routing16)


@pytest.fixture(scope="session")
def workload16():
    """4 applications x 16 processes: the paper's 16-switch workload."""
    return Workload.uniform(4, 16)


@pytest.fixture(scope="session")
def workload8():
    """2 applications x 16 processes on an 8-switch machine."""
    return Workload.uniform(2, 16)


@pytest.fixture(scope="session")
def scheduler16(topo16):
    return CommunicationAwareScheduler(topo16)
