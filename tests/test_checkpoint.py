"""Tests for sweep checkpoint/resume durability and bit-identity."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checkpoint import CheckpointMismatch, SweepCheckpoint
from repro.parallel import parallel_map


def _square(x):
    return x * x


class TestRoundTrip:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(path, key="study-1", total=3)
        ck.record(0, {"c_c": 4.5})
        ck.record(2, (1, 2, 3))
        ck2 = SweepCheckpoint(path, key="study-1", total=3)
        assert ck2.completed(3) == {0: {"c_c": 4.5}, 2: (1, 2, 3)}
        assert len(ck2) == 2
        assert 0 in ck2 and 1 not in ck2

    def test_arbitrary_picklable_results(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(path, key="")
        payload = {"nested": [1.5, None, ("a", frozenset({2}))]}
        ck.record(7, payload)
        assert SweepCheckpoint(path, key="").completed()[7] == payload

    def test_repr_mentions_progress(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "ck.jsonl", key="k", total=5)
        ck.record(0, 1)
        assert "completed=1" in repr(ck)
        assert "total=5" in repr(ck)


class TestMismatch:
    def test_wrong_key_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        SweepCheckpoint(path, key="run-a").record(0, 1)
        with pytest.raises(CheckpointMismatch, match="different run"):
            SweepCheckpoint(path, key="run-b")

    def test_wrong_total_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        SweepCheckpoint(path, key="k", total=10).record(0, 1)
        with pytest.raises(CheckpointMismatch, match="10"):
            SweepCheckpoint(path, key="k", total=12)

    def test_completed_rejects_out_of_range_index(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(path, key="k")
        ck.record(9, 81)
        with pytest.raises(CheckpointMismatch, match="beyond sweep size"):
            SweepCheckpoint(path, key="k").completed(5)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("this is not a checkpoint\n")
        with pytest.raises(CheckpointMismatch, match="not a repro sweep"):
            SweepCheckpoint(path, key="k")


class TestTruncation:
    def test_truncated_trailing_line_dropped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(path, key="k")
        ck.record(0, 10)
        ck.record(1, 20)
        # Simulate a kill mid-write: chop the last record in half.
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 12])
        ck2 = SweepCheckpoint(path, key="k")
        assert ck2.completed() == {0: 10}
        # The next record compacts the file; nothing is lost after that.
        ck2.record(1, 20)
        assert SweepCheckpoint(path, key="k").completed() == {0: 10, 1: 20}


_KILLED_SWEEP_SCRIPT = """
import os, sys
sys.path.insert(0, {src!r})
from repro.checkpoint import SweepCheckpoint
from repro.parallel import parallel_map

class DyingCheckpoint(SweepCheckpoint):
    \"\"\"Hard-kills the process after recording ``die_after`` jobs.\"\"\"
    die_after = {die_after}
    def record(self, index, result):
        super().record(index, result)
        if len(self) >= self.die_after:
            os._exit(42)

def cube(x):
    return x * x * x

ck = DyingCheckpoint({path!r}, key="kill-test", total=8)
parallel_map(cube, list(range(8)), checkpoint=ck)
"""


class TestKillAndResume:
    def test_killed_mid_sweep_resumes_bit_identical(self, tmp_path):
        # A subprocess dies (os._exit, no cleanup) after 3 completed jobs;
        # resuming in this process must yield results byte-identical to an
        # uninterrupted run.
        path = tmp_path / "ck.jsonl"
        script = _KILLED_SWEEP_SCRIPT.format(
            src=str(Path(__file__).resolve().parents[1] / "src"),
            die_after=3,
            path=str(path),
        )
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True)
        assert proc.returncode == 42, proc.stderr
        ck = SweepCheckpoint(path, key="kill-test", total=8)
        assert len(ck) == 3

        resumed = parallel_map(lambda x: x ** 3, list(range(8)),
                               checkpoint=ck)
        uninterrupted = [x ** 3 for x in range(8)]
        assert (json.dumps(resumed, sort_keys=True)
                == json.dumps(uninterrupted, sort_keys=True))
        # And the checkpoint is now complete: a third run executes nothing.
        final = SweepCheckpoint(path, key="kill-test", total=8)
        assert parallel_map(_refuse, list(range(8)),
                            checkpoint=final) == uninterrupted


def _refuse(x):
    raise AssertionError("resumed run re-executed a completed job")


class TestTornWriteRecovery:
    def test_every_truncation_point_recovers(self, tmp_path):
        # Exhaustive torn-write sweep: kill the writer at EVERY byte
        # offset inside the last record; each prefix must load cleanly
        # and see exactly the fully-written records.
        path = tmp_path / "ck.jsonl"
        with SweepCheckpoint(path, key="torn") as ck:
            ck.record(0, {"a": 1})
            ck.record(1, {"b": 2})
        raw = path.read_bytes()
        lines = raw.decode().splitlines(keepends=True)
        second_record_start = len((lines[0] + lines[1]).encode())
        # Stop before len(raw) - 1: losing only the final newline leaves a
        # complete, parseable record, which is correctly kept.
        for cut in range(second_record_start, len(raw) - 1):
            path.write_bytes(raw[:cut])
            recovered = SweepCheckpoint(path, key="torn")
            assert recovered.completed() == {0: {"a": 1}}, f"cut at {cut}"
        path.write_bytes(raw[:-1])
        assert SweepCheckpoint(path, key="torn").completed() \
            == {0: {"a": 1}, 1: {"b": 2}}

    def test_recovery_then_write_compacts_and_is_durable(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with SweepCheckpoint(path, key="torn") as ck:
            ck.record(0, 1)
            ck.record(1, 2)
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])          # torn tail
        with SweepCheckpoint(path, key="torn") as ck2:
            ck2.record(1, 2)                # triggers crash-safe rewrite
            ck2.record(2, 3)
        final = SweepCheckpoint(path, key="torn")
        assert final.completed() == {0: 1, 1: 2, 2: 3}
        # Every line in the compacted file parses (no torn hybrid).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_leftover_tmp_from_crashed_rewrite_is_ignored(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        tmp = tmp_path / "ck.jsonl.tmp"
        tmp.write_text("garbage from a rewrite that died pre-replace\n")
        with SweepCheckpoint(path, key="k") as ck:
            ck.record(0, 7)
        assert SweepCheckpoint(path, key="k").completed() == {0: 7}
        assert not tmp.exists()             # rewrite path reclaims the name

    def test_context_manager_closes_the_append_handle(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with SweepCheckpoint(path, key="k") as ck:
            ck.record(0, 1)       # first record: crash-safe file creation
            ck.record(1, 5)       # second: durable append, handle kept open
            assert ck._fh is not None and not ck._fh.closed
        assert ck._fh is None
        ck.close()                           # idempotent
        # Reopen and append: the handle is lazily recreated.
        with SweepCheckpoint(path, key="k") as ck2:
            ck2.record(2, 2)
        assert SweepCheckpoint(path, key="k").completed() \
            == {0: 1, 1: 5, 2: 2}
