"""Quick tests of the multi-topology survey driver."""

import pytest

from repro.experiments.survey import SurveyResult, SurveyRow, render_survey, run_survey
from repro.simulation.config import SimulationConfig

QUICK = SimulationConfig(warmup_cycles=120, measure_cycles=500, seed=5)


@pytest.fixture(scope="module")
def survey_result():
    return run_survey(topology_seeds=(42, 77), num_random=3,
                      num_points=5, config=QUICK)


class TestSurvey:
    def test_one_row_per_topology(self, survey_result):
        assert len(survey_result.rows) == 2
        names = {r.topology for r in survey_result.rows}
        assert names == {"paper-16sw-t42", "paper-16sw-t77"}

    def test_op_beats_random_everywhere(self, survey_result):
        assert survey_result.min_ratio() > 1.0

    def test_correlations_positive(self, survey_result):
        assert survey_result.all_correlations_above(0.0)

    def test_threshold_helper(self):
        rows = [SurveyRow("a", 16, 4.0, 2.0, 0.8, 0.9),
                SurveyRow("b", 16, 4.0, 2.0, 0.6, 0.9)]
        res = SurveyResult(rows)
        assert res.all_correlations_above(0.5)
        assert not res.all_correlations_above(0.7)
        assert res.min_ratio() == 2.0

    def test_render(self, survey_result):
        out = render_survey(survey_result)
        assert "survey" in out and "corr low load" in out
