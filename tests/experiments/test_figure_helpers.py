"""Unit tests for figure-driver helpers on synthetic data (no simulation)."""

import pytest

from repro.core.mapping import Partition, random_partition, partition_to_mapping
from repro.experiments.common import MappingRecord
from repro.experiments.fig3_sim16 import SimFigureResult, default_sim_config
from repro.experiments.fig6_correlation import Fig6Result
from repro.simulation.metrics import SimulationResult
from repro.simulation.sweep import LoadPoint
from repro.util.stats import RunningStats


def fake_result(accepted, latency):
    rs = RunningStats()
    rs.add(latency)
    return SimulationResult(
        offered_flits_per_switch_cycle=1.0,
        accepted_flits_per_switch_cycle=accepted,
        avg_latency=latency,
        latency=rs,
        total_latency=rs,
        messages_completed=10,
        messages_generated=12,
        flits_consumed_measured=100,
        cycles_measured=100,
        warmup_cycles=10,
    )


def fake_record(name, c_c, topo16, workload16):
    part = random_partition([4] * 4, 16, seed=hash(name) % 1000)
    mapping = partition_to_mapping(part, workload16, topo16)
    return MappingRecord(name, part, mapping, c_c, 1.0 / c_c, 1.0)


@pytest.fixture
def synthetic_fig(topo16, workload16):
    op = fake_record("OP", 4.0, topo16, workload16)
    r1 = fake_record("R1", 1.0, topo16, workload16)
    r2 = fake_record("R2", 0.8, topo16, workload16)
    rates = [0.01, 0.02]
    sweeps = {
        "OP": [LoadPoint(1, 0.01, fake_result(0.3, 20.0)),
               LoadPoint(2, 0.02, fake_result(0.6, 25.0))],
        "R1": [LoadPoint(1, 0.01, fake_result(0.28, 30.0)),
               LoadPoint(2, 0.02, fake_result(0.35, 80.0))],
        "R2": [LoadPoint(1, 0.01, fake_result(0.25, 40.0)),
               LoadPoint(2, 0.02, fake_result(0.30, 120.0))],
    }
    return SimFigureResult(
        figure="synthetic",
        topology_name="t16",
        mappings=[op, r1, r2],
        rates=rates,
        sweeps=sweeps,
        saturation_throughput={"OP": 0.9, "R1": 0.4, "R2": 0.3},
    )


class TestSimFigureResult:
    def test_record_accessors(self, synthetic_fig):
        assert synthetic_fig.op_record.name == "OP"
        assert [m.name for m in synthetic_fig.random_records] == ["R1", "R2"]

    def test_ratio(self, synthetic_fig):
        assert synthetic_fig.op_over_best_random == pytest.approx(0.9 / 0.4)

    def test_default_config_values(self):
        cfg = default_sim_config()
        assert cfg.message_length == 16
        assert cfg.buffer_flits == 2
        assert cfg.measure_cycles >= 1000


class TestFig6Result:
    def test_window_means_skip_nan(self):
        res = Fig6Result(
            labels=[f"S{i}" for i in range(1, 10)],
            c_c=[4.0, 1.0, 0.8],
            mapping_names=["OP", "R1", "R2"],
            corr_neg_latency=[0.5] * 9,
            corr_accepted=[0.6] * 9,
            corr_power=[float("nan"), 0.8, 0.9, 0.7] + [0.95] * 5,
        )
        # First window: nan skipped -> mean of (0.8, 0.9, 0.7).
        assert res.low_load_power_corr() == pytest.approx(0.8)
        assert res.saturation_power_corr() == pytest.approx(0.95)

    def test_all_nan_window(self):
        res = Fig6Result(
            labels=["S1"], c_c=[1.0], mapping_names=["OP"],
            corr_neg_latency=[0.0], corr_accepted=[0.0],
            corr_power=[float("nan")],
        )
        import math

        assert math.isnan(res.low_load_power_corr(points=1))
