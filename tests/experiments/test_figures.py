"""Quick-configuration runs of every figure driver.

These are the integration tests for the paper's evaluation: each figure's
*shape claims* are asserted with reduced simulation windows so the suite
stays fast; the full-scale regeneration lives in benchmarks/.
"""

import math

import pytest

from repro.experiments.common import paper_16switch_setup, paper_24switch_setup
from repro.experiments.fig1_tabu_trace import render_fig1, run_fig1
from repro.experiments.fig2_partition16 import render_fig2, run_fig2
from repro.experiments.fig3_sim16 import render_fig3, run_fig3
from repro.experiments.fig4_partition24 import (
    expected_ring_clusters,
    render_fig4,
    run_fig4,
)
from repro.experiments.fig5_sim24 import render_fig5, run_fig5
from repro.experiments.fig6_correlation import (
    correlations_from_sim,
    render_fig6,
    run_fig6,
)
from repro.simulation.config import SimulationConfig

QUICK = SimulationConfig(warmup_cycles=150, measure_cycles=700, seed=5)


@pytest.fixture(scope="module")
def setup16():
    return paper_16switch_setup()


@pytest.fixture(scope="module")
def setup24():
    return paper_24switch_setup()


@pytest.fixture(scope="module")
def fig3_result(setup16):
    return run_fig3(setup16, num_random=4, config=QUICK)


class TestFig1:
    def test_structure(self, setup16):
        res = run_fig1(setup16, seed=1)
        assert res.num_restarts == 10
        # Paper: value at each starting point is a peak (random ~ 1).
        for idx in res.restart_indices:
            assert res.trace[idx] > 2 * res.best_value
        # Rapid initial descent: after 5 iterations F drops below 60 % of start.
        first = res.trace[res.restart_indices[0]:res.restart_indices[0] + 6]
        assert min(first) < 0.6 * first[0]

    def test_minima_recorded_per_restart(self, setup16):
        res = run_fig1(setup16, seed=1)
        assert len(res.minima_per_restart) == 10
        assert min(res.minima_per_restart) == pytest.approx(res.best_value)
        assert 1 <= res.restarts_reaching_best <= 10

    def test_render(self, setup16):
        out = render_fig1(run_fig1(setup16, seed=1))
        assert "Figure 1" in out and "F(P_i) series" in out


class TestFig2:
    def test_balanced_partition(self, setup16):
        res = run_fig2(setup16, seed=1)
        assert sorted(len(c) for c in res.partition.clusters()) == [4, 4, 4, 4]
        assert res.c_c > 1.0
        assert res.f_g < 1.0

    def test_render(self, setup16):
        out = render_fig2(run_fig2(setup16, seed=1))
        assert "Figure 2" in out and "C_c=" in out


class TestFig3:
    def test_op_throughput_dominates(self, fig3_result):
        res = fig3_result
        ratio = res.op_over_best_random
        # Paper reports ~1.85x for its topology; require a clear win.
        assert ratio > 1.3, f"OP/random throughput ratio only {ratio:.2f}"

    def test_op_latency_lower_at_high_load(self, fig3_result):
        res = fig3_result
        k = len(res.rates) - 1
        op_lat = res.sweeps["OP"][k].result.avg_latency
        for m in res.random_records:
            assert op_lat < res.sweeps[m.name][k].result.avg_latency

    def test_c_c_gap(self, fig3_result):
        op = fig3_result.op_record
        assert all(op.c_c > r.c_c for r in fig3_result.random_records)

    def test_render(self, fig3_result):
        out = render_fig3(fig3_result)
        assert "Figure 3" in out and "OP" in out and "latency" in out


class TestFig4:
    def test_rings_identified(self, setup24):
        res = run_fig4(setup24, seed=1)
        assert res.matches_expected is True

    def test_expected_clusters_helper(self):
        assert expected_ring_clusters()[0] == (0, 1, 2, 3, 4, 5)

    def test_render(self, setup24):
        out = render_fig4(run_fig4(setup24, seed=1))
        assert "Figure 4" in out and "matches designed clusters: True" in out


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5_result(self, setup24):
        return run_fig5(setup24, num_random=2, config=QUICK)

    def test_gap_larger_than_fig3(self, fig5_result, fig3_result):
        # The paper's central comparative claim: the designed network shows
        # a much larger OP/random gap (5x vs 1.85x).
        assert fig5_result.op_over_best_random > fig3_result.op_over_best_random

    def test_c_c_higher_than_16switch(self, fig5_result, fig3_result):
        assert fig5_result.op_record.c_c > fig3_result.op_record.c_c

    def test_render(self, fig5_result):
        assert "Figure 5" in render_fig5(fig5_result)


class TestFig6:
    def test_correlations_positive(self, fig3_result):
        res = correlations_from_sim(fig3_result)
        # Combined power metric: strongly positive at both ends.
        assert res.low_load_power_corr() > 0.5
        assert res.saturation_power_corr() > 0.5
        # Accepted-traffic correlation must be high in saturation.
        assert res.corr_accepted[-1] > 0.7

    def test_shapes(self, fig3_result):
        res = correlations_from_sim(fig3_result)
        assert len(res.labels) == len(fig3_result.rates)
        assert len(res.c_c) == len(fig3_result.mappings)

    def test_run_fig6_from_scratch_quick(self, setup16):
        res = run_fig6(setup16, num_random=3, config=QUICK)
        assert not math.isnan(res.saturation_power_corr())

    def test_render(self, fig3_result):
        out = render_fig6(correlations_from_sim(fig3_result))
        assert "Figure 6" in out and "S1" in out
