"""Tests for the shared experiment infrastructure."""

import pytest

from repro.experiments.common import (
    ExperimentSetup,
    paper_16switch_setup,
    paper_24switch_setup,
)
from repro.simulation.config import SimulationConfig

QUICK = SimulationConfig(warmup_cycles=100, measure_cycles=400, seed=5)


@pytest.fixture(scope="module")
def setup16():
    return paper_16switch_setup()


@pytest.fixture(scope="module")
def setup24():
    return paper_24switch_setup()


class TestSetups:
    def test_16_shape(self, setup16):
        assert setup16.topology.num_switches == 16
        assert setup16.topology.num_hosts == 64
        assert setup16.workload.num_clusters == 4
        assert setup16.workload.total_processes == 64

    def test_24_shape(self, setup24):
        assert setup24.topology.num_switches == 24
        assert setup24.topology.num_hosts == 96
        assert setup24.workload.total_processes == 96

    def test_op_mapping_beats_randoms(self, setup16):
        op = setup16.op_mapping()
        randoms = setup16.random_mappings(5)
        assert op.name == "OP"
        assert all(op.c_c > r.c_c for r in randoms)
        assert all(op.f_g < r.f_g for r in randoms)

    def test_random_mappings_distinct(self, setup16):
        randoms = setup16.random_mappings(6)
        keys = {r.partition.canonical_key() for r in randoms}
        assert len(keys) == 6
        assert [r.name for r in randoms] == [f"R{i}" for i in range(1, 7)]

    def test_random_mappings_reproducible(self, setup16):
        a = setup16.random_mappings(3)
        b = setup16.random_mappings(3)
        assert all(x.partition == y.partition for x, y in zip(a, b))

    def test_sweep_runs(self, setup16):
        op = setup16.op_mapping()
        points = setup16.sweep(op, [0.005, 0.02], QUICK)
        assert len(points) == 2
        assert points[0].result.messages_completed > 0

    def test_load_ladder_monotone(self, setup16):
        rates = setup16.load_ladder(QUICK, n=5)
        assert len(rates) == 5
        assert all(a < b for a, b in zip(rates, rates[1:]))
