"""Tests for the fault-injection study (new driver and legacy view)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mapping import Workload
from repro.core.scheduler import CommunicationAwareScheduler
from repro.experiments.common import ExperimentSetup, paper_16switch_setup
from repro.experiments.failures import (
    FailureRow,
    FailureStudyResult,
    render_failure_study,
    render_fault_study,
    run_failure_study,
    run_fault_study,
    simulate_fault_impact,
)
from repro.simulation.config import SimulationConfig
from repro.faults.model import FaultScenario, sample_fault_scenarios
from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.search.tabu import TabuSearch
from repro.topology.designed import star_topology
from repro.topology.irregular import random_irregular_topology


def _setup_for(topo, clusters, *, seed=1, search=None):
    scheduler = CommunicationAwareScheduler(topo, search=search) \
        if search is not None else CommunicationAwareScheduler(topo)
    per_cluster = (topo.num_switches // clusters) * topo.hosts_per_switch
    return ExperimentSetup(
        topology=topo,
        scheduler=scheduler,
        workload=Workload.uniform(clusters, per_cluster),
        routing_table=RoutingTable(scheduler.routing),
        seed=seed,
    )


@pytest.fixture(scope="module")
def setup16():
    return paper_16switch_setup()


@pytest.fixture(scope="module")
def study(setup16):
    # Subset of links keeps the test quick; the bench does all of them.
    return run_failure_study(setup16, links=setup16.topology.links[:8])


class TestFailureStudy:
    def test_one_row_per_link(self, study):
        assert len(study.rows) == 8

    def test_3regular_network_survives_single_failures(self, study):
        # A 3-regular random connected graph is almost surely 2-edge-
        # connected; our seeded topology is (verified here).
        assert all(r.still_connected for r in study.rows)

    def test_updown_reconnects_after_failure(self, setup16):
        for link in setup16.topology.links[:8]:
            failed = setup16.topology.without_link(*link)
            if failed.is_connected():
                r = UpDownRouting(failed)
                d = r.distances()
                assert (d >= 0).all()

    def test_degradation_and_recovery(self, study):
        # NOTE: C_c is a *relative* quality measure (intracluster vs
        # intercluster bandwidth), so failing an intercluster link can
        # RAISE the stale mapping's C_c even though absolute capacity
        # dropped — no monotonicity is asserted on degradation.  What must
        # hold: rescheduling never does worse than the stale mapping.
        for r in study.survivable:
            assert r.c_c_degraded > 0
            assert r.c_c_rescheduled >= r.c_c_degraded - 1e-9
        assert study.all_survivable_rescheduled_ok()

    def test_disconnecting_failure_marked(self):
        # Star topology: every link failure disconnects a leaf.
        from repro.core.scheduler import CommunicationAwareScheduler
        from repro.core.mapping import Workload
        from repro.experiments.common import ExperimentSetup
        from repro.routing.tables import RoutingTable

        topo = star_topology(5)
        sched = CommunicationAwareScheduler(topo)
        setup = ExperimentSetup(
            topology=topo,
            scheduler=sched,
            workload=Workload.uniform(2, 8),
            routing_table=RoutingTable(sched.routing),
            seed=1,
        )
        res = run_failure_study(setup, links=[(0, 1)])
        assert not res.rows[0].still_connected
        assert res.rows[0].c_c_degraded is None

    def test_render(self, study):
        out = render_failure_study(study)
        assert "failure injection" in out
        assert "survivable failures: 8/8" in out

    def test_recovery_property(self):
        row = FailureRow((0, 1), True, 4.0, 2.0, 3.0)
        assert row.recovery == pytest.approx(1.0)
        row2 = FailureRow((0, 1), False, 4.0, None, None)
        assert row2.recovery is None


class TestFailureStudyEdgeCases:
    def test_disconnected_rows_excluded_from_survivable(self):
        rows = [
            FailureRow((0, 1), True, 4.0, 3.5, 3.8),
            FailureRow((0, 2), False, 4.0, None, None),
            FailureRow((0, 3), False, 4.0, None, None),
        ]
        res = FailureStudyResult(rows)
        assert len(res.survivable) == 1
        # Disconnected rows (c_c None) must not crash the check.
        assert res.all_survivable_rescheduled_ok()

    def test_all_disconnected_is_vacuously_ok(self):
        rows = [FailureRow((0, 1), False, 4.0, None, None)]
        res = FailureStudyResult(rows)
        assert res.survivable == []
        assert res.all_survivable_rescheduled_ok()

    def test_regression_detected(self):
        rows = [FailureRow((0, 1), True, 4.0, 3.5, 3.0)]
        assert not FailureStudyResult(rows).all_survivable_rescheduled_ok()

    def test_empty_links_gives_empty_study(self, setup16):
        res = run_failure_study(setup16, links=[])
        assert res.rows == []
        assert res.survivable == []
        assert res.all_survivable_rescheduled_ok()
        assert "survivable failures: 0/0" in render_failure_study(res)

    def test_recovery_none_when_rescheduling_skipped(self):
        row = FailureRow((0, 1), False, 4.0, None, None)
        assert row.recovery is None
        # Partial skips too (degraded known, reschedule skipped).
        assert FailureRow((0, 1), True, 4.0, 3.0, None).recovery is None


@given(st.integers(0, 10_000))
@settings(max_examples=5, deadline=None)
def test_all_survivable_rescheduled_ok_is_invariant(seed):
    """Property: the repair guarantee holds for any scheduling seed.

    Warm-started searches track the best value seen, so no seed can make
    rescheduling end below the degraded mapping — the paper's monotonicity
    argument as a hypothesis property (small search keeps it quick).
    """
    topo = random_irregular_topology(8, seed=7, name="prop8")
    setup = _setup_for(topo, 2, seed=seed,
                       search=TabuSearch(restarts=2, max_iterations=8))
    res = run_failure_study(setup, links=topo.links[:4], seed=seed)
    assert res.all_survivable_rescheduled_ok()


class TestFaultStudy:
    @pytest.fixture(scope="class")
    def small_setup(self):
        topo = random_irregular_topology(8, seed=7, name="fs8")
        return _setup_for(topo, 2,
                          search=TabuSearch(restarts=2, max_iterations=10))

    @pytest.fixture(scope="class")
    def k2_scenarios(self, small_setup):
        return sample_fault_scenarios(small_setup.topology, num_faults=2,
                                      count=4, seed=3,
                                      include_switches=True)

    @pytest.fixture(scope="class")
    def k2_study(self, small_setup, k2_scenarios):
        return run_fault_study(small_setup, k2_scenarios, seed=1)

    def test_one_row_per_scenario(self, k2_study, k2_scenarios):
        assert len(k2_study.rows) == len(k2_scenarios)
        assert [r.scenario for r in k2_study.rows] == list(k2_scenarios)

    def test_repair_guarantee_on_survivable(self, k2_study):
        assert k2_study.all_survivable_repaired_ok()
        for r in k2_study.survivable:
            assert r.c_c_repaired >= r.c_c_degraded - 1e-9
            assert r.repair_gap is not None

    def test_degraded_mode_rows_never_raise(self, k2_study):
        for r in k2_study.degraded_mode:
            assert r.c_c_degraded is None
            assert r.placed_clusters + r.unplaced_clusters >= 1

    def test_parallel_matches_serial_bitwise(self, small_setup,
                                             k2_scenarios, k2_study):
        par = run_fault_study(small_setup, k2_scenarios, seed=1, workers=2)
        assert par.deterministic_payload() == k2_study.deterministic_payload()

    def test_checkpoint_resume_bit_identical(self, small_setup, k2_scenarios,
                                             k2_study, tmp_path):
        # First run records everything; a second run with the same
        # checkpoint replays from disk and must serialize identically.
        path = str(tmp_path / "faults.jsonl")
        first = run_fault_study(small_setup, k2_scenarios, seed=1,
                                checkpoint_path=path)
        resumed = run_fault_study(small_setup, k2_scenarios, seed=1,
                                  checkpoint_path=path)
        assert first.deterministic_payload() == resumed.deterministic_payload()
        assert resumed.deterministic_payload() == k2_study.deterministic_payload()

    def test_render_mentions_survivable_and_tradeoff(self, k2_study):
        out = render_fault_study(k2_study)
        assert "failure injection" in out
        n = len(k2_study.survivable)
        assert f"survivable failures: {n}/{len(k2_study.rows)}" in out

    def test_default_scenarios_are_single_links(self, small_setup):
        res = run_fault_study(small_setup, seed=1)
        assert len(res.rows) == len(small_setup.topology.links)
        assert all(r.scenario.num_faults == 1 for r in res.rows)


class TestSimulatedFaultImpact:
    """The simulated throughput-under-faults companion to the C_c study."""

    @pytest.fixture(scope="class")
    def small_setup(self):
        topo = random_irregular_topology(8, seed=7, name="fsim8")
        return _setup_for(topo, 2,
                          search=TabuSearch(restarts=2, max_iterations=10))

    @pytest.fixture(scope="class")
    def scenarios(self, small_setup):
        return [FaultScenario(links=(link,))
                for link in small_setup.topology.links[:3]]

    def _impact(self, setup, scenarios, engine):
        cfg = SimulationConfig(warmup_cycles=100, measure_cycles=300,
                               seed=3, engine=engine)
        return simulate_fault_impact(setup, scenarios,
                                     rates=[0.002, 0.01], config=cfg)

    def test_healthy_row_present_and_faults_swept(self, small_setup,
                                                  scenarios):
        out = self._impact(small_setup, scenarios, "fast")
        assert "healthy" in out
        # The seeded 3-regular topology survives single-link faults with
        # all switches alive, so every scenario is full-machine.
        assert len(out) == 1 + len(scenarios)
        for row in out.values():
            assert len(row["accepted"]) == 2
            assert all(a >= 0 for a in row["accepted"])

    def test_engine_batch_byte_identical_to_fast(self, small_setup,
                                                 scenarios):
        """The fault study's determinism contract is engine-independent."""
        fast = self._impact(small_setup, scenarios, "fast")
        batch = self._impact(small_setup, scenarios, "batch")
        assert json.dumps(fast, sort_keys=True) \
            == json.dumps(batch, sort_keys=True)

    def test_fault_study_itself_is_engine_free(self, small_setup, scenarios):
        """run_fault_study never simulates: its payload has no engine knob,
        so the same bytes come out regardless of the ambient default."""
        a = run_fault_study(small_setup, scenarios, seed=1)
        b = run_fault_study(small_setup, scenarios, seed=1)
        assert a.deterministic_payload() == b.deterministic_payload()
