"""Tests for the link-failure study."""

import pytest

from repro.experiments.common import paper_16switch_setup
from repro.experiments.failures import (
    FailureRow,
    FailureStudyResult,
    render_failure_study,
    run_failure_study,
)
from repro.routing.updown import UpDownRouting
from repro.topology.designed import star_topology


@pytest.fixture(scope="module")
def setup16():
    return paper_16switch_setup()


@pytest.fixture(scope="module")
def study(setup16):
    # Subset of links keeps the test quick; the bench does all of them.
    return run_failure_study(setup16, links=setup16.topology.links[:8])


class TestFailureStudy:
    def test_one_row_per_link(self, study):
        assert len(study.rows) == 8

    def test_3regular_network_survives_single_failures(self, study):
        # A 3-regular random connected graph is almost surely 2-edge-
        # connected; our seeded topology is (verified here).
        assert all(r.still_connected for r in study.rows)

    def test_updown_reconnects_after_failure(self, setup16):
        for link in setup16.topology.links[:8]:
            failed = setup16.topology.without_link(*link)
            if failed.is_connected():
                r = UpDownRouting(failed)
                d = r.distances()
                assert (d >= 0).all()

    def test_degradation_and_recovery(self, study):
        # NOTE: C_c is a *relative* quality measure (intracluster vs
        # intercluster bandwidth), so failing an intercluster link can
        # RAISE the stale mapping's C_c even though absolute capacity
        # dropped — no monotonicity is asserted on degradation.  What must
        # hold: rescheduling never does worse than the stale mapping.
        for r in study.survivable:
            assert r.c_c_degraded > 0
            assert r.c_c_rescheduled >= r.c_c_degraded - 1e-9
        assert study.all_survivable_rescheduled_ok()

    def test_disconnecting_failure_marked(self):
        # Star topology: every link failure disconnects a leaf.
        from repro.core.scheduler import CommunicationAwareScheduler
        from repro.core.mapping import Workload
        from repro.experiments.common import ExperimentSetup
        from repro.routing.tables import RoutingTable

        topo = star_topology(5)
        sched = CommunicationAwareScheduler(topo)
        setup = ExperimentSetup(
            topology=topo,
            scheduler=sched,
            workload=Workload.uniform(2, 8),
            routing_table=RoutingTable(sched.routing),
            seed=1,
        )
        res = run_failure_study(setup, links=[(0, 1)])
        assert not res.rows[0].still_connected
        assert res.rows[0].c_c_degraded is None

    def test_render(self, study):
        out = render_failure_study(study)
        assert "failure injection" in out
        assert "survivable failures: 8/8" in out

    def test_recovery_property(self):
        row = FailureRow((0, 1), True, 4.0, 2.0, 3.0)
        assert row.recovery == pytest.approx(1.0)
        row2 = FailureRow((0, 1), False, 4.0, None, None)
        assert row2.recovery is None
