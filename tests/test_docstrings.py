"""Documentation-coverage gate: every public item carries a docstring.

A reproduction is only adoptable if its API is documented; this test walks
every module under ``repro`` and fails on any public module, class,
function or method without a docstring.
"""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_MODULES = {"repro.__main__"}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        mod = getattr(obj, "__module__", None)
        if mod != module.__name__:
            continue  # re-exported from elsewhere; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_docstring():
    missing = [m.__name__ for m in iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_callable_has_docstring():
    missing = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for mname, method in vars(obj).items():
                    if mname.startswith("_") or not inspect.isfunction(method):
                        continue
                    if not inspect.getdoc(method):
                        missing.append(f"{module.__name__}.{name}.{mname}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_api_exports_resolve_everywhere():
    for module in iter_modules():
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), \
                f"{module.__name__}.__all__ lists missing name {name!r}"
