"""HTML rendering: self-containment, scatter, regression highlighting."""

import re

from repro.reporting import render_html, render_status_page, wrap_records
from repro.reporting.html import scatter_svg

from .test_render import make_record


def assert_self_contained(page: str) -> None:
    """No external assets: inline CSS/SVG only, no JS, no CDN links."""
    assert page.startswith("<!DOCTYPE html>")
    assert "<script" not in page.lower()
    # the only absolute URL allowed is the SVG namespace declaration
    externals = [u for u in re.findall(r"https?://[^\"' >]+", page)
                 if u != "http://www.w3.org/2000/svg"]
    assert externals == []
    assert "<style>" in page


class TestRenderHtml:
    def test_real_study_page(self, tiny_study):
        page = render_html(tiny_study)
        assert_self_contained(page)
        assert "<svg" in page
        assert "OP/healthy/fast" in page
        assert "Variation study: tiny" in page

    def test_regression_rows_are_highlighted(self):
        records = [
            make_record("OP/healthy/fast", peak=1.0, top_latency=10.0),
            make_record("random-1/healthy/fast", peak=0.4, top_latency=40.0),
        ]
        page = render_html(wrap_records(records, baseline="OP"))
        assert 'class="regression"' in page
        assert 'class="baseline"' in page
        assert '<span class="flag">REG</span>' in page

    def test_rendering_is_deterministic(self, tiny_study):
        assert render_html(tiny_study) == render_html(tiny_study)

    def test_markup_is_escaped(self):
        records = [make_record("OP/healthy/fast")]
        records[0].name = "OP/<b>evil</b>/fast"
        page = render_html(wrap_records(records))
        assert "<b>evil</b>" not in page
        assert "&lt;b&gt;evil&lt;/b&gt;" in page


class TestScatterSvg:
    def test_baseline_point_is_emphasized(self):
        records = [make_record("OP/healthy/fast", peak=1.0),
                   make_record("r/healthy/fast", peak=0.7)]
        svg = scatter_svg(records, "OP/healthy/fast")
        assert svg.count("<circle") == 2
        assert 'stroke-width="2"' in svg      # the baseline ring
        assert "<title>" in svg               # hover tooltips

    def test_no_measured_cells_falls_back(self):
        record = make_record("OP/healthy/fast")
        record.peak_throughput = None
        svg = scatter_svg([record], "OP/healthy/fast")
        assert "<svg" not in svg
        assert "no measured cells" in svg


class TestStatusPage:
    def test_sections_and_links(self):
        page = render_status_page({
            "requests_total": 7,
            "store": {"hits": 3, "misses": 4},
            "pool": {"workers": 2, "active": True},
        })
        assert_self_contained(page)
        for endpoint in ("/healthz", "/metrics", "/status", "/report"):
            assert f'href="{endpoint}"' in page
        assert "requests_total" in page and "hits" in page
