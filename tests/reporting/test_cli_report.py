"""CLI surface: ``repro report --study`` and the ``--report`` flags."""

import json

import pytest

from repro.cli import main
from repro.reporting import validate_variation_record


@pytest.fixture()
def spec_path(tiny_spec, tmp_path):
    path = tmp_path / "spec.json"
    tiny_spec.save(path)
    return path


class TestReportStudy:
    def test_writes_markdown_html_and_records(self, spec_path, tmp_path,
                                              capsys):
        md = tmp_path / "study.md"
        html = tmp_path / "study.html"
        records = tmp_path / "records.json"
        assert main(["report", "--study", str(spec_path),
                     "--md", str(md), "--html", str(html),
                     "--records", str(records)]) == 0
        assert md.read_text().startswith("# Variation study: tiny")
        assert html.read_text().startswith("<!DOCTYPE html>")
        rows = json.loads(records.read_text())
        assert len(rows) == 12      # the tiny grid: 3 x 2 x 2
        for row in rows:
            validate_variation_record(row)

    def test_defaults_to_stdout_markdown(self, spec_path, capsys):
        assert main(["report", "--study", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Variation study: tiny")
        assert "## Verdict" in out

    def test_baseline_override(self, spec_path, capsys):
        assert main(["report", "--study", str(spec_path),
                     "--baseline", "R1"]) == 0
        assert "`R1/healthy/fast` (baseline)" in \
            capsys.readouterr().out

    def test_missing_spec_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "--study", str(tmp_path / "nope.json")])

    def test_invalid_spec_fails(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"type": "variation_study_spec",
                                    "surprise": 1}))
        with pytest.raises(SystemExit, match="surprise"):
            main(["report", "--study", str(path)])

    def test_no_arguments_fails(self):
        with pytest.raises(SystemExit, match="--study"):
            main(["report"])


class TestExperimentReports:
    def test_figures_report(self, tmp_path, capsys):
        path = tmp_path / "figs.html"
        assert main(["figures", "--fig", "3", "--randoms", "1",
                     "--warmup", "100", "--measure", "300",
                     "--report", str(path)]) == 0
        page = path.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "OP/healthy/fig3" in page

    def test_failures_report(self, tmp_path, capsys):
        path = tmp_path / "faults.html"
        assert main(["failures", "--switches", "8", "--seed", "11",
                     "--clusters", "2", "--limit", "2",
                     "--report", str(path)]) == 0
        page = path.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "/faults" in page
