"""Markdown rendering: baseline selection, deltas, regression flags."""

import pytest

from repro.reporting import (
    VariationRecord,
    baseline_record,
    render_markdown,
    wrap_records,
)
from repro.reporting.render import REGRESSION_THRESHOLD, record_deltas


def make_record(name, *, peak=1.0, top_latency=10.0, repair_gap=None):
    """A hand-built two-rate record: 'mapping/fault/engine' from name."""
    mapping, fault_set, engine = name.split("/")
    def ci(v):
        return {"mean": v, "lo": v * 0.9, "hi": v * 1.1}
    return VariationRecord(
        name=name, mapping=mapping, fault_set=fault_set, engine=engine,
        c_c=2.0, f_g=1.5, d_g=1.2, rates=[0.01, 0.02],
        latency=[ci(top_latency * 0.5), ci(top_latency)],
        throughput=[ci(peak * 0.5), ci(peak)],
        peak_throughput=peak, repair_gap=repair_gap,
        counters={}, replications=2,
    )


@pytest.fixture()
def synthetic_result():
    records = [
        make_record("OP/healthy/fast", peak=1.0, top_latency=10.0),
        make_record("random-1/healthy/fast", peak=0.5, top_latency=30.0),
        make_record("OP/link-0/fast", peak=0.98, top_latency=10.2,
                    repair_gap=0.01),
    ]
    return wrap_records(records, name="synthetic", baseline="OP")


class TestBaselineRecord:
    def test_prefers_the_healthy_baseline_cell(self, synthetic_result):
        assert baseline_record(synthetic_result).name == "OP/healthy/fast"

    def test_falls_back_to_the_first_record(self):
        records = [make_record("a/healthy/fast"), make_record("b/x/fast")]
        result = wrap_records(records, baseline="missing")
        assert baseline_record(result).name == "a/healthy/fast"


class TestRecordDeltas:
    def test_throughput_drop_regresses(self):
        base = make_record("OP/healthy/fast", peak=1.0)
        worse = make_record("r/healthy/fast",
                            peak=1.0 - 2 * REGRESSION_THRESHOLD)
        d_thr, _, regressed = record_deltas(worse, base)
        assert regressed and d_thr < 0

    def test_latency_rise_regresses(self):
        base = make_record("OP/healthy/fast", top_latency=10.0)
        worse = make_record(
            "r/healthy/fast",
            top_latency=10.0 * (1 + 2 * REGRESSION_THRESHOLD))
        _, d_lat, regressed = record_deltas(worse, base)
        assert regressed and d_lat > 0

    def test_within_threshold_is_clean(self):
        base = make_record("OP/healthy/fast")
        near = make_record("r/healthy/fast", peak=0.99, top_latency=10.1)
        _, _, regressed = record_deltas(near, base)
        assert not regressed

    def test_undefined_sides_give_none(self):
        base = make_record("OP/healthy/fast")
        empty = make_record("r/healthy/fast")
        empty.peak_throughput = None
        empty.latency = []
        empty.rates = []
        empty.throughput = []
        d_thr, d_lat, regressed = record_deltas(empty, base)
        assert d_thr is None and d_lat is None and not regressed


class TestRenderMarkdown:
    def test_sections_and_flags(self, synthetic_result):
        text = render_markdown(synthetic_result)
        assert text.startswith("# Variation study: synthetic")
        assert "## Cells" in text and "## Measured ladder" in text
        assert "`OP/healthy/fast` (baseline)" in text
        # random-1 halves the throughput and triples the latency
        assert "**REG**" in text
        assert "1 variation(s) regressed" in text
        assert "Best peak throughput: `OP/healthy/fast`" in text

    def test_clean_study_has_no_flags(self):
        records = [make_record("OP/healthy/fast"),
                   make_record("random-1/healthy/fast")]
        text = render_markdown(wrap_records(records, baseline="OP"))
        assert "**REG**" not in text
        assert "No variation regressed" in text

    def test_rendering_is_deterministic(self, synthetic_result):
        assert render_markdown(synthetic_result) == \
            render_markdown(synthetic_result)

    def test_real_study_renders(self, tiny_study):
        text = render_markdown(tiny_study)
        assert "`OP/healthy/fast`" in text
        assert text.count("|") > 40    # both tables populated
