"""Variation studies: spec validation, execution, determinism, adapters."""

import json

import pytest

from repro import serialize
from repro.reporting import (
    StudySpec,
    VariationRecord,
    records_from_fault_study,
    records_from_sim_figure,
    run_variation_study,
    validate_variation_record,
    wrap_records,
)
from repro.reporting.study import HEALTHY, build_setup

from .conftest import TINY_SPEC_KWARGS


class TestStudySpec:
    def test_roundtrip_through_dict(self, tiny_spec):
        again = StudySpec.from_dict(tiny_spec.to_dict())
        assert again == tiny_spec

    def test_roundtrip_through_file(self, tiny_spec, tmp_path):
        path = tmp_path / "spec.json"
        tiny_spec.save(path)
        assert StudySpec.load(path) == tiny_spec

    def test_roundtrip_through_serialize(self, tiny_spec):
        assert serialize.from_dict(serialize.to_dict(tiny_spec)) == tiny_spec

    def test_unknown_keys_rejected(self, tiny_spec):
        payload = tiny_spec.to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            StudySpec.from_dict(payload)

    def test_wrong_type_tag_rejected(self):
        with pytest.raises(ValueError, match="variation_study_spec"):
            StudySpec.from_dict({"type": "topology"})

    @pytest.mark.parametrize("bad", [
        dict(topology="mesh"),
        dict(replications=0),
        dict(num_rates=1),
        dict(engines=()),
        dict(fault_sets=()),
    ])
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(ValueError):
            StudySpec(**{**TINY_SPEC_KWARGS, **bad})

    def test_cells_counts_the_grid(self, tiny_spec):
        assert tiny_spec.cells == 3 * 2 * 2 == 12


class TestRunVariationStudy:
    def test_one_record_per_cell(self, tiny_spec, tiny_study):
        assert len(tiny_study.records) == tiny_spec.cells
        names = [r.name for r in tiny_study.records]
        assert len(set(names)) == len(names)
        assert "OP/healthy/fast" in names
        assert "R1/link-0/batch" in names

    def test_records_validate_and_roundtrip(self, tiny_study):
        for r in tiny_study.records:
            payload = r.to_dict()
            validate_variation_record(payload)
            json.dumps(payload, allow_nan=False)
            again = serialize.from_dict(payload)
            assert isinstance(again, VariationRecord)
            assert again.to_dict() == payload

    def test_measurements_are_parallel_to_rates(self, tiny_spec, tiny_study):
        for r in tiny_study.records:
            assert len(r.rates) == tiny_spec.num_rates
            assert len(r.latency) == len(r.throughput) == len(r.rates)
            assert r.replications == tiny_spec.replications

    def test_repair_gap_only_on_fault_cells(self, tiny_study):
        for r in tiny_study.records:
            if r.fault_set == HEALTHY:
                assert r.repair_gap is None

    def test_rerun_is_deterministic(self, tiny_spec, tiny_study):
        again = run_variation_study(tiny_spec)
        assert again.deterministic_payload() == \
            tiny_study.deterministic_payload()

    def test_parallel_run_matches_serial(self, tiny_spec, tiny_study):
        again = run_variation_study(tiny_spec, workers=2)
        assert again.deterministic_payload() == \
            tiny_study.deterministic_payload()

    def test_record_lookup_by_name(self, tiny_study):
        assert tiny_study.record("OP/healthy/fast").mapping == "OP"
        with pytest.raises(KeyError):
            tiny_study.record("nope")

    def test_partitioning_fault_set_rejected(self, tiny_spec):
        spec = StudySpec(**{**TINY_SPEC_KWARGS,
                            "fault_sets": ("L0-999",)})
        with pytest.raises(ValueError):
            run_variation_study(spec)

    def test_unknown_fault_label_rejected(self, tiny_spec):
        spec = StudySpec(**{**TINY_SPEC_KWARGS, "fault_sets": ("bogus",)})
        with pytest.raises(ValueError, match="unknown fault set"):
            run_variation_study(spec)


class TestValidateVariationRecord:
    def _valid(self, tiny_study):
        return tiny_study.records[0].to_dict()

    def test_not_a_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_variation_record([1, 2])

    def test_missing_key(self, tiny_study):
        d = self._valid(tiny_study)
        del d["peak_throughput"]
        with pytest.raises(ValueError, match="missing"):
            validate_variation_record(d)

    def test_unknown_key(self, tiny_study):
        d = self._valid(tiny_study)
        d["extra"] = 1
        with pytest.raises(ValueError, match="unknown"):
            validate_variation_record(d)

    def test_nonfinite_value(self, tiny_study):
        d = self._valid(tiny_study)
        d["latency"][0]["mean"] = float("nan")
        with pytest.raises(ValueError, match="finite"):
            validate_variation_record(d)

    def test_latency_not_parallel_to_rates(self, tiny_study):
        d = self._valid(tiny_study)
        d["latency"] = d["latency"][:-1]
        with pytest.raises(ValueError, match="parallel"):
            validate_variation_record(d)

    def test_bad_entry_shape(self, tiny_study):
        d = self._valid(tiny_study)
        d["throughput"][0] = {"mean": 1.0}
        with pytest.raises(ValueError, match="mean/lo/hi"):
            validate_variation_record(d)

    def test_bad_replications(self, tiny_study):
        d = self._valid(tiny_study)
        d["replications"] = 0
        with pytest.raises(ValueError, match="replications"):
            validate_variation_record(d)


class TestAdapters:
    @pytest.fixture(scope="class")
    def fig_result(self):
        from repro.experiments.fig3_sim16 import run_sim_figure
        from repro.simulation.config import SimulationConfig

        spec = StudySpec(**TINY_SPEC_KWARGS)
        setup = build_setup(spec)
        return run_sim_figure(
            "fig-tiny", setup, num_random=1, num_points=3,
            config=SimulationConfig(warmup_cycles=100, measure_cycles=300,
                                    seed=5),
        )

    def test_sim_figure_records(self, fig_result):
        records = records_from_sim_figure(fig_result, engine="fig3")
        assert [r.name for r in records] == \
            ["OP/healthy/fig3", "R1/healthy/fig3"]
        for r in records:
            validate_variation_record(r.to_dict())
            assert r.peak_throughput is not None
            assert len(r.latency) == len(r.rates)
            # single sweep: the CI collapses to the point estimate
            assert r.latency[-1]["lo"] == r.latency[-1]["hi"]

    def test_fault_study_records(self):
        from repro.experiments.failures import run_fault_study
        from repro.faults.model import single_link_scenarios

        spec = StudySpec(**TINY_SPEC_KWARGS)
        setup = build_setup(spec)
        scenarios = single_link_scenarios(setup.topology)[:2]
        res = run_fault_study(setup, scenarios, seed=1)
        records = records_from_fault_study(res)
        assert len(records) == 2
        for r in records:
            validate_variation_record(r.to_dict())
            assert r.engine == "faults"
            assert r.rates == [] and r.peak_throughput is None

    def test_wrap_records_recovers_the_grid(self, fig_result):
        records = records_from_sim_figure(fig_result, engine="fig3")
        result = wrap_records(records, name="wrapped", switches=8)
        assert result.spec.name == "wrapped"
        assert result.spec.engines == ("fig3",)
        assert result.spec.num_random == 1
        assert result.rates == records[0].rates

    def test_wrap_records_rejects_empty(self):
        with pytest.raises(ValueError):
            wrap_records([])
