"""The HTTP operator console: routing, error handling, live daemon."""

import asyncio
import json

import pytest

from repro.obs.export import parse_exposition, validate_exposition
from repro.reporting.console import ConsoleServer


def http_get(request: bytes, **providers):
    """Start a console, send one raw request, return the raw response."""

    async def _run():
        console = ConsoleServer(**providers)
        host, port = await console.start("127.0.0.1", 0)
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(request)
            await writer.drain()
            data = await reader.read()
            writer.close()
            await writer.wait_closed()
            return data, console.requests_served
        finally:
            await console.stop()

    return asyncio.run(_run())


def parse_response(raw: bytes):
    """``(status, headers, body)`` from one HTTP/1.0 response."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(": ")
        headers[key.lower()] = value
    return status, headers, body


class TestRouting:
    def test_healthz_defaults_to_ok(self):
        raw, served = http_get(b"GET /healthz HTTP/1.0\r\n\r\n")
        status, headers, body = parse_response(raw)
        assert status == 200 and body == b"ok"
        assert headers["connection"] == "close"
        assert int(headers["content-length"]) == len(body)
        assert served == 1

    def test_metrics_route(self):
        raw, _ = http_get(b"GET /metrics HTTP/1.0\r\n\r\n",
                          metrics=lambda: "# HELP x x\n# TYPE x counter\nx 1\n")
        status, headers, body = parse_response(raw)
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert validate_exposition(body.decode()) == []

    def test_status_route_is_json(self):
        raw, _ = http_get(b"GET /status HTTP/1.0\r\n\r\n",
                          status=lambda: {"b": 2, "a": 1})
        status, headers, body = parse_response(raw)
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        assert json.loads(body) == {"a": 1, "b": 2}

    def test_report_served_at_root_and_report(self):
        for path in (b"/", b"/report"):
            raw, _ = http_get(b"GET " + path + b" HTTP/1.0\r\n\r\n",
                              report=lambda: "<html>hi</html>")
            status, headers, body = parse_response(raw)
            assert status == 200 and body == b"<html>hi</html>"
            assert headers["content-type"].startswith("text/html")

    def test_query_strings_are_stripped(self):
        raw, _ = http_get(b"GET /healthz?probe=1 HTTP/1.0\r\n\r\n")
        assert parse_response(raw)[0] == 200

    def test_missing_provider_is_404(self):
        for path in (b"/metrics", b"/status", b"/report"):
            raw, _ = http_get(b"GET " + path + b" HTTP/1.0\r\n\r\n")
            assert parse_response(raw)[0] == 404

    def test_unknown_path_is_404(self):
        raw, _ = http_get(b"GET /nope HTTP/1.0\r\n\r\n")
        assert parse_response(raw)[0] == 404


class TestErrorHandling:
    def test_non_get_is_405(self):
        raw, _ = http_get(b"POST /healthz HTTP/1.0\r\n\r\n")
        assert parse_response(raw)[0] == 405

    def test_malformed_request_line_is_400(self):
        raw, _ = http_get(b"BOGUS\r\n\r\n")
        assert parse_response(raw)[0] == 400

    def test_oversized_headers_are_400(self):
        filler = b"X-Pad: " + b"a" * 4000 + b"\r\n"
        raw, _ = http_get(b"GET / HTTP/1.0\r\n" + filler * 4 + b"\r\n",
                          report=lambda: "x")
        assert parse_response(raw)[0] == 400

    def test_provider_exception_is_500_and_server_survives(self):
        def boom():
            raise RuntimeError("kaput")

        async def _run():
            console = ConsoleServer(metrics=boom)
            host, port = await console.start("127.0.0.1", 0)
            try:
                out = []
                for path in (b"/metrics", b"/healthz"):
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(b"GET " + path + b" HTTP/1.0\r\n\r\n")
                    await writer.drain()
                    out.append(await reader.read())
                    writer.close()
                    await writer.wait_closed()
                return out
            finally:
                await console.stop()

        first, second = asyncio.run(_run())
        assert parse_response(first)[0] == 500
        assert b"kaput" in first
        assert parse_response(second)[0] == 200   # still serving


class TestLiveDaemon:
    """The console answering while the daemon schedules real traffic."""

    @pytest.fixture(scope="class")
    def daemon(self):
        from repro.service import ServiceConfig, running_service

        config = ServiceConfig(port=0, workers=1, batch_window=0.01,
                               console_port=0)
        with running_service(config) as svc:
            yield svc

    def _console_get(self, daemon, path: str) -> bytes:
        import socket

        console = daemon.status().console
        with socket.create_connection(
                (console["host"], console["port"]), timeout=5) as sock:
            sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    def test_status_reports_the_console(self, daemon):
        console = daemon.status().console
        assert console is not None and console["port"] > 0

    def test_endpoints_answer_while_serving_traffic(self, daemon):
        from repro.service import ScheduleRequest, ServiceClient
        from repro.topology.irregular import random_irregular_topology

        topo = random_irregular_topology(8, seed=11, name="console8")
        with ServiceClient(*daemon.address) as client:
            client.wait_until_ready()
            reply = client.submit(
                ScheduleRequest.build(topo, clusters=4, seed=1))
        assert "result" in reply

        status, _, body = parse_response(
            self._console_get(daemon, "/healthz"))
        assert status == 200 and body == b"ok"

        status, _, body = parse_response(
            self._console_get(daemon, "/metrics"))
        assert status == 200
        text = body.decode()
        assert validate_exposition(text) == []
        families = parse_exposition(text)
        assert families["repro_service_requests_total"][0][1] >= 1.0

        status, _, body = parse_response(self._console_get(daemon, "/status"))
        assert status == 200
        payload = json.loads(body)
        assert payload["type"] == "service_status"
        assert payload["requests_total"] >= 1

        status, _, body = parse_response(self._console_get(daemon, "/report"))
        assert status == 200 and body.startswith(b"<!DOCTYPE html>")

    def test_console_requests_are_counted(self, daemon):
        before = daemon.status().console["requests"]
        self._console_get(daemon, "/healthz")
        assert daemon.status().console["requests"] > before
