"""Shared fixtures for the reporting suite: one tiny executed study.

The study grid is the smallest one that still exercises every axis —
3 mappings x 2 fault sets x 2 engines = 12 cells — over a 2-point load
ladder with 2 replications of very short simulations, so the whole
suite stays in the sub-second range per module.
"""

from __future__ import annotations

import pytest

from repro.reporting import StudySpec, run_variation_study

TINY_SPEC_KWARGS = dict(
    name="tiny",
    topology="random",
    switches=8,
    topology_seed=7,
    clusters=2,
    seed=5,
    num_random=2,
    engines=("fast", "batch"),
    fault_sets=("healthy", "link-0"),
    num_rates=2,
    max_rate=0.02,
    replications=2,
    warmup_cycles=100,
    measure_cycles=300,
)


@pytest.fixture(scope="session")
def tiny_spec() -> StudySpec:
    return StudySpec(**TINY_SPEC_KWARGS)


@pytest.fixture(scope="session")
def tiny_study(tiny_spec):
    """The tiny spec, executed once for the whole session."""
    return run_variation_study(tiny_spec)
