"""The documented public API must exist and compose as advertised."""

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_readme_quickstart(self):
        # Exactly the snippet advertised in the package docstring/README.
        topo = repro.random_irregular_topology(16, seed=42)
        scheduler = repro.CommunicationAwareScheduler(topo)
        result = scheduler.schedule(repro.Workload.uniform(4, 16), seed=1)
        assert result.c_c > 1.0
        assert "F_G=" in result.summary()

    def test_distance_pipeline_composes(self):
        topo = repro.four_rings_topology()
        routing = repro.UpDownRouting(topo)
        table = repro.build_distance_table(routing)
        part = repro.Partition.from_clusters(
            [range(0, 6), range(6, 12), range(12, 18), range(18, 24)], 24
        )
        assert repro.clustering_coefficient(table, part) > 1.0

    def test_simulator_composes(self):
        topo = repro.random_irregular_topology(8, seed=1)
        routing = repro.UpDownRouting(topo)
        rt = repro.RoutingTable(routing)
        sim = repro.WormholeNetworkSimulator(
            rt, repro.UniformTraffic(topo), 0.01,
            repro.SimulationConfig(warmup_cycles=50, measure_cycles=200),
        )
        res = sim.run()
        assert res.messages_completed > 0

    def test_search_methods_share_interface(self, table8):
        from repro.search import SimilarityObjective

        obj = SimilarityObjective(table8, [4, 4])
        for cls in (repro.TabuSearch, repro.SimulatedAnnealing,
                    repro.GeneticAlgorithm, repro.GeneticSimulatedAnnealing,
                    repro.AStarSearch, repro.ExhaustiveSearch,
                    repro.RandomSearch):
            method = cls()
            res = method.run(obj, seed=0)
            assert res.best_partition.sizes() == [4, 4]
