"""Tests for topology validation."""

import pytest

from repro.topology.designed import four_rings_topology, ring_topology
from repro.topology.graph import Topology
from repro.topology.irregular import random_irregular_topology
from repro.topology.validate import (
    TopologyError,
    check_paper_constraints,
    validate_topology,
)


class TestValidateTopology:
    def test_valid_passes(self, topo16):
        validate_topology(topo16)

    def test_disconnected_fails(self):
        t = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(TopologyError, match="disconnected"):
            validate_topology(t)

    def test_disconnected_allowed_when_requested(self):
        t = Topology(4, [(0, 1), (2, 3)])
        validate_topology(t, require_connected=False)


class TestPaperConstraints:
    def test_generator_output_passes(self):
        check_paper_constraints(random_irregular_topology(16, seed=5))

    def test_wrong_hosts_rejected(self):
        t = random_irregular_topology(8, seed=1, hosts_per_switch=2,
                                      switch_ports=8)
        with pytest.raises(TopologyError, match="hosts"):
            check_paper_constraints(t)

    def test_wrong_degree_rejected(self):
        t = ring_topology(8)  # degree 2 everywhere
        with pytest.raises(TopologyError, match="degree"):
            check_paper_constraints(t)

    def test_designed_four_rings_not_paper_regular(self):
        # The Figure 4 network is deliberately not 3-regular.
        with pytest.raises(TopologyError):
            check_paper_constraints(four_rings_topology())
