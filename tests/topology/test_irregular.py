"""Tests for the random irregular topology generator."""

import pytest

from repro.topology.irregular import random_irregular_topology
from repro.topology.validate import check_paper_constraints, validate_topology


class TestGenerator:
    @pytest.mark.parametrize("n", [8, 12, 16, 20, 24])
    def test_paper_constraints_hold(self, n):
        topo = random_irregular_topology(n, seed=1)
        check_paper_constraints(topo)

    def test_regular_degree(self):
        topo = random_irregular_topology(16, degree=3, seed=2)
        assert all(topo.degree(s) == 3 for s in range(16))

    def test_link_count(self):
        topo = random_irregular_topology(16, degree=3, seed=3)
        assert topo.num_links == 16 * 3 // 2

    def test_connected(self):
        for seed in range(10):
            assert random_irregular_topology(16, seed=seed).is_connected()

    def test_seed_reproducible(self):
        a = random_irregular_topology(16, seed=99)
        b = random_irregular_topology(16, seed=99)
        assert a.links == b.links

    def test_seeds_differ(self):
        a = random_irregular_topology(16, seed=1)
        b = random_irregular_topology(16, seed=2)
        assert a.links != b.links

    def test_other_degrees(self):
        topo = random_irregular_topology(10, degree=4, seed=1)
        assert all(topo.degree(s) == 4 for s in range(10))
        validate_topology(topo)

    def test_custom_name(self):
        topo = random_irregular_topology(8, seed=0, name="custom")
        assert topo.name == "custom"


class TestGeneratorValidation:
    def test_odd_stub_count_rejected(self):
        with pytest.raises(ValueError, match="even"):
            random_irregular_topology(15, degree=3)

    def test_degree_too_large_for_ports(self):
        with pytest.raises(ValueError, match="ports"):
            random_irregular_topology(16, degree=5)

    def test_degree_ge_n_rejected(self):
        with pytest.raises(ValueError):
            random_irregular_topology(3, degree=3, hosts_per_switch=0,
                                      switch_ports=8)

    def test_degree_zero_rejected(self):
        with pytest.raises(ValueError):
            random_irregular_topology(4, degree=0)
