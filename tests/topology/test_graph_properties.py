"""Property-based tests on the Topology model (hypothesis)."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.topology.graph import Topology
from repro.topology.irregular import random_irregular_topology


@st.composite
def arbitrary_topologies(draw):
    """Random simple graphs as Topology objects (possibly disconnected)."""
    n = draw(st.integers(2, 12))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    subset = draw(st.lists(st.sampled_from(possible), unique=True, max_size=20))
    ports = 4 + n  # always enough ports
    return Topology(n, subset, hosts_per_switch=4, switch_ports=ports)


@given(arbitrary_topologies())
@settings(max_examples=60, deadline=None)
def test_hop_distances_match_networkx(topo):
    d = topo.hop_distances()
    g = topo.to_networkx()
    lengths = dict(nx.all_pairs_shortest_path_length(g))
    for i in range(topo.num_switches):
        for j in range(topo.num_switches):
            expected = lengths.get(i, {}).get(j, -1)
            assert d[i, j] == expected


@given(arbitrary_topologies())
@settings(max_examples=60, deadline=None)
def test_connectivity_matches_networkx(topo):
    assert topo.is_connected() == nx.is_connected(topo.to_networkx()) \
        if topo.num_switches > 0 else True


@given(arbitrary_topologies(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_relabeling_preserves_degree_multiset(topo, pyrandom):
    perm = list(range(topo.num_switches))
    pyrandom.shuffle(perm)
    r = topo.relabeled(perm)
    assert sorted(topo.degree(s) for s in range(topo.num_switches)) == \
        sorted(r.degree(s) for s in range(r.num_switches))
    # Degree is equivariant: degree_r(perm[s]) == degree(s)
    for s in range(topo.num_switches):
        assert r.degree(perm[s]) == topo.degree(s)


@given(st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_generator_always_valid(seed):
    topo = random_irregular_topology(12, seed=seed)
    assert topo.is_connected()
    assert all(topo.degree(s) == 3 for s in range(12))
    # Simple graph: adjacency matrix has zero diagonal and 0/1 entries.
    a = topo.adjacency_matrix()
    assert a.max() <= 1 and a.diagonal().sum() == 0
