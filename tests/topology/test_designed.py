"""Tests for designed/regular topology constructors."""

import pytest

from repro.topology.designed import (
    binary_tree_topology,
    clustered_random_topology,
    complete_topology,
    four_rings_topology,
    hypercube_topology,
    mesh_topology,
    ring_topology,
    star_topology,
    torus_topology,
)
from repro.topology.validate import validate_topology


class TestFourRings:
    def test_default_shape(self):
        t = four_rings_topology()
        assert t.num_switches == 24
        validate_topology(t)
        # 4 rings of 6 edges + 4 inter-ring links.
        assert t.num_links == 24 + 4

    def test_ring_membership_links(self):
        t = four_rings_topology()
        for r in range(4):
            base = 6 * r
            for k in range(6):
                assert t.has_link(base + k, base + (k + 1) % 6)

    def test_more_inter_links(self):
        t = four_rings_topology(links_between_adjacent_rings=2)
        assert t.num_links == 24 + 8
        validate_topology(t)

    def test_other_sizes(self):
        t = four_rings_topology(rings=3, ring_size=4)
        assert t.num_switches == 12
        validate_topology(t)

    def test_validation(self):
        with pytest.raises(ValueError):
            four_rings_topology(rings=2)
        with pytest.raises(ValueError):
            four_rings_topology(ring_size=2)
        with pytest.raises(ValueError):
            four_rings_topology(links_between_adjacent_rings=0)


class TestRegularTopologies:
    def test_ring(self):
        t = ring_topology(6)
        assert t.num_links == 6
        assert all(t.degree(s) == 2 for s in range(6))
        assert t.diameter() == 3

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_topology(2)

    def test_mesh(self):
        t = mesh_topology(3, 4)
        assert t.num_switches == 12
        assert t.num_links == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols
        assert t.degree(0) == 2  # corner
        validate_topology(t)

    def test_mesh_single_row(self):
        t = mesh_topology(1, 5)
        assert t.num_links == 4

    def test_torus(self):
        t = torus_topology(3, 3)
        assert all(t.degree(s) == 4 for s in range(9))
        assert t.num_links == 2 * 9

    def test_torus_too_small(self):
        with pytest.raises(ValueError):
            torus_topology(2, 3)

    def test_hypercube(self):
        t = hypercube_topology(3)
        assert t.num_switches == 8
        assert all(t.degree(s) == 3 for s in range(8))
        assert t.diameter() == 3

    def test_complete(self):
        t = complete_topology(5)
        assert t.num_links == 10
        assert t.diameter() == 1

    def test_star(self):
        t = star_topology(5)
        assert t.degree(0) == 4
        assert all(t.degree(s) == 1 for s in range(1, 5))

    def test_binary_tree(self):
        t = binary_tree_topology(3)
        assert t.num_switches == 7
        assert t.num_links == 6
        assert t.is_connected()

    @pytest.mark.parametrize("builder,args", [
        (ring_topology, (2,)),
        (mesh_topology, (0, 3)),
        (hypercube_topology, (0,)),
        (complete_topology, (1,)),
        (star_topology, (1,)),
        (binary_tree_topology, (0,)),
    ])
    def test_rejects_degenerate(self, builder, args):
        with pytest.raises(ValueError):
            builder(*args)


class TestClusteredRandom:
    def test_shape_and_connectivity(self):
        t = clustered_random_topology(4, 4, seed=1)
        assert t.num_switches == 16
        validate_topology(t)

    def test_reproducible(self):
        a = clustered_random_topology(3, 5, seed=9)
        b = clustered_random_topology(3, 5, seed=9)
        assert a.links == b.links

    def test_planted_rings_present(self):
        t = clustered_random_topology(3, 4, seed=2)
        for c in range(3):
            base = 4 * c
            for k in range(4):
                assert t.has_link(base + k, base + (k + 1) % 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered_random_topology(1, 4)
        with pytest.raises(ValueError):
            clustered_random_topology(3, 2)
