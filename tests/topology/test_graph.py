"""Tests for the Topology model."""

import numpy as np
import pytest

from repro.topology.graph import Topology


def small_topo():
    #  0-1, 1-2, 2-0 triangle plus pendant 3
    return Topology(4, [(0, 1), (1, 2), (2, 0), (2, 3)], hosts_per_switch=2,
                    switch_ports=6)


class TestConstruction:
    def test_basic_counts(self):
        t = small_topo()
        assert t.num_switches == 4
        assert t.num_links == 4
        assert t.num_hosts == 8

    def test_links_normalized_sorted(self):
        t = Topology(3, [(2, 1), (1, 0)])
        assert t.links == ((0, 1), (1, 2))

    def test_self_link_rejected(self):
        with pytest.raises(ValueError, match="self-link"):
            Topology(2, [(0, 0)])

    def test_duplicate_link_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Topology(2, [(0, 1), (1, 0)])

    def test_out_of_range_switch(self):
        with pytest.raises(ValueError):
            Topology(2, [(0, 2)])

    def test_port_overflow_rejected(self):
        # 4 hosts + 8 ports => max degree 4; give switch 0 degree 5.
        links = [(0, i) for i in range(1, 6)]
        with pytest.raises(ValueError, match="degree"):
            Topology(6, links, hosts_per_switch=4, switch_ports=8)

    def test_zero_switches_rejected(self):
        with pytest.raises(ValueError):
            Topology(0, [])

    def test_ports_less_than_hosts_rejected(self):
        with pytest.raises(ValueError):
            Topology(1, [], hosts_per_switch=6, switch_ports=4)


class TestAccessors:
    def test_neighbors_sorted(self):
        t = small_topo()
        assert t.neighbors(2) == (0, 1, 3)

    def test_degree(self):
        t = small_topo()
        assert t.degree(2) == 3
        assert t.degree(3) == 1

    def test_open_ports(self):
        t = small_topo()  # 6 ports, 2 hosts => 4 link ports
        assert t.open_ports(3) == 3
        assert t.open_ports(2) == 1

    def test_has_link_symmetric(self):
        t = small_topo()
        assert t.has_link(0, 1) and t.has_link(1, 0)
        assert not t.has_link(0, 3)

    def test_link_id_stable(self):
        t = small_topo()
        assert t.link_id(1, 0) == t.link_id(0, 1)
        ids = {t.link_id(u, v) for u, v in t.links}
        assert ids == set(range(t.num_links))


class TestHosts:
    def test_host_switch_roundtrip(self):
        t = small_topo()
        for s in range(t.num_switches):
            for h in t.switch_hosts(s):
                assert t.host_switch(h) == s

    def test_host_out_of_range(self):
        t = small_topo()
        with pytest.raises(ValueError):
            t.host_switch(t.num_hosts)

    def test_switch_out_of_range(self):
        t = small_topo()
        with pytest.raises(ValueError):
            t.switch_hosts(4)


class TestDerived:
    def test_adjacency_matrix(self):
        t = small_topo()
        a = t.adjacency_matrix()
        assert (a == a.T).all()
        assert a.sum() == 2 * t.num_links
        assert a[0, 1] == 1 and a[0, 3] == 0

    def test_laplacian_rows_sum_zero(self):
        lap = small_topo().laplacian()
        assert np.allclose(lap.sum(axis=1), 0)

    def test_connected(self):
        assert small_topo().is_connected()

    def test_disconnected(self):
        t = Topology(4, [(0, 1), (2, 3)])
        assert not t.is_connected()

    def test_hop_distances(self):
        t = small_topo()
        d = t.hop_distances()
        assert d[0, 0] == 0
        assert d[0, 3] == 2
        assert (d == d.T).all()

    def test_hop_distances_disconnected(self):
        t = Topology(3, [(0, 1)])
        d = t.hop_distances()
        assert d[0, 2] == -1

    def test_diameter(self):
        assert small_topo().diameter() == 2

    def test_diameter_disconnected_raises(self):
        with pytest.raises(ValueError):
            Topology(3, [(0, 1)]).diameter()

    def test_single_switch_connected(self):
        assert Topology(1, []).is_connected()


class TestRemoval:
    def test_without_link(self):
        t = small_topo().without_link(0, 1)
        assert t.num_links == 3
        assert not t.has_link(0, 1)
        assert t.num_switches == 4

    def test_without_link_missing_names_link(self):
        with pytest.raises(ValueError, match=r"\(0,3\) is not a link"):
            small_topo().without_link(0, 3)
        with pytest.raises(ValueError, match=r"\(1,9\) is not a link"):
            small_topo().without_link(1, 9)

    def test_without_links_batch(self):
        t = small_topo().without_links([(0, 1), (2, 3)])
        assert t.num_links == 2
        assert not t.has_link(0, 1) and not t.has_link(2, 3)

    def test_without_links_empty_is_identity(self):
        t = small_topo()
        assert t.without_links([]) is t

    def test_without_links_missing_names_link(self):
        with pytest.raises(ValueError, match=r"\(1,3\) is not a link"):
            small_topo().without_links([(0, 1), (1, 3)])

    def test_without_switch_renumbers(self):
        # Drop switch 1 of the triangle+pendant: 2->1, 3->2.
        t = small_topo().without_switch(1)
        assert t.num_switches == 3
        assert t.has_link(0, 1)   # old 0-2
        assert t.has_link(1, 2)   # old 2-3
        assert t.num_links == 2

    def test_without_switch_out_of_range_names_switch(self):
        with pytest.raises(ValueError,
                           match=r"switch 7 is not a switch .*0\.\.3"):
            small_topo().without_switch(7)
        with pytest.raises(ValueError, match="switch -1"):
            small_topo().without_switch(-1)

    def test_without_last_switch_rejected(self):
        with pytest.raises(ValueError, match="single switch"):
            Topology(1, []).without_switch(0)

    def test_induced_subtopology_sorted_id_map(self):
        t = small_topo().induced_subtopology([2, 0, 1])
        assert t.num_switches == 3
        # sorted([2,0,1]) == [0,1,2]: the triangle survives intact.
        assert t.num_links == 3

    def test_induced_subtopology_drops_crossing_links(self):
        t = small_topo().induced_subtopology([0, 3])
        assert t.num_switches == 2
        assert t.num_links == 0

    def test_induced_subtopology_validation(self):
        with pytest.raises(ValueError, match=">= 1 switch"):
            small_topo().induced_subtopology([])
        with pytest.raises(ValueError, match="duplicate"):
            small_topo().induced_subtopology([0, 0])
        with pytest.raises(ValueError, match="switch 4"):
            small_topo().induced_subtopology([0, 4])


class TestInterop:
    def test_networkx_export(self):
        g = small_topo().to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 4

    def test_relabeled_isomorphic(self):
        t = small_topo()
        perm = [3, 2, 1, 0]
        r = t.relabeled(perm)
        assert r.num_links == t.num_links
        for u, v in t.links:
            assert r.has_link(perm[u], perm[v])

    def test_relabeled_rejects_non_bijection(self):
        with pytest.raises(ValueError):
            small_topo().relabeled([0, 0, 1, 2])

    def test_equality_and_hash(self):
        a = small_topo()
        b = small_topo()
        assert a == b and hash(a) == hash(b)
        c = Topology(4, [(0, 1), (1, 2), (2, 0)], hosts_per_switch=2,
                     switch_ports=6)
        assert a != c

    def test_repr(self):
        assert "switches=4" in repr(small_topo())
