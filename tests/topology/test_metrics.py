"""Tests for classical topology metrics."""

import networkx as nx
import pytest

from repro.topology.designed import (
    complete_topology,
    hypercube_topology,
    mesh_topology,
    ring_topology,
    star_topology,
)
from repro.topology.graph import Topology
from repro.topology.metrics import (
    average_distance,
    bisection_is_exact,
    bisection_width,
    degree_stats,
    edge_connectivity,
    path_diversity,
    summary,
)


class TestAverageDistance:
    def test_complete_graph(self):
        assert average_distance(complete_topology(5)) == pytest.approx(1.0)

    def test_ring(self):
        # Ring of 4: distances 1,2,1 from each node -> mean 4/3.
        assert average_distance(ring_topology(4)) == pytest.approx(4 / 3)

    def test_disconnected_rejected(self):
        t = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            average_distance(t)


class TestDegreeStats:
    def test_star(self):
        s = degree_stats(star_topology(5))
        assert s == {"min": 1.0, "max": 4.0, "mean": 8 / 5}


class TestBisection:
    def test_ring_is_two(self):
        assert bisection_width(ring_topology(8)) == 2

    def test_star_balanced_cut(self):
        # Any balanced cut of a star cuts the leaves on the far side: 2 or 3.
        assert bisection_width(star_topology(6)) == 3

    def test_hypercube(self):
        # d-cube bisection = 2^(d-1).
        assert bisection_width(hypercube_topology(3)) == 4

    def test_mesh(self):
        assert bisection_width(mesh_topology(4, 4)) == 4

    def test_exactness_flag(self, topo16, topo24):
        assert bisection_is_exact(topo16)
        assert not bisection_is_exact(topo24)

    def test_sampled_upper_bound(self, topo24):
        # Sampled estimate must be a valid cut (>= true min, <= all links).
        est = bisection_width(topo24, samples=300)
        assert 1 <= est <= topo24.num_links

    def test_single_switch_rejected(self):
        with pytest.raises(ValueError):
            bisection_width(Topology(1, []))


class TestEdgeConnectivity:
    def test_matches_networkx(self, topo16):
        ours = edge_connectivity(topo16)
        theirs = nx.edge_connectivity(topo16.to_networkx())
        assert ours == theirs

    def test_ring(self):
        assert edge_connectivity(ring_topology(6)) == 2

    def test_star(self):
        assert edge_connectivity(star_topology(5)) == 1

    def test_disconnected_zero(self):
        assert edge_connectivity(Topology(4, [(0, 1), (2, 3)])) == 0


class TestPathDiversity:
    def test_tree_has_unit_diversity(self):
        from repro.topology.designed import binary_tree_topology

        assert path_diversity(binary_tree_topology(3)) == pytest.approx(1.0)

    def test_hypercube_exceeds_tree(self):
        assert path_diversity(hypercube_topology(3)) > 1.2

    def test_complete_graph_high(self):
        assert path_diversity(complete_topology(5)) > 1.5


class TestSummary:
    def test_all_keys_present(self, topo16):
        s = summary(topo16)
        for key in ("switches", "links", "diameter", "average_distance",
                    "degree", "bisection_width", "edge_connectivity",
                    "path_diversity"):
            assert key in s
        assert s["switches"] == 16

    def test_four_rings_sparse_bisection(self, topo24):
        # The designed network's inter-ring sparsity shows up here — the
        # structural reason for the Figure 5 throughput collapse.  24
        # switches exceeds the exact-enumeration limit, so the sampled
        # estimate is an upper bound on the true bisection (which is 2:
        # cut the ring-of-rings cycle between {ring0,ring1}|{ring2,ring3}).
        s = summary(topo24)
        assert not s["bisection_exact"]
        assert 2 <= s["bisection_width"] <= 6
        # Edge connectivity (exact) already exposes the sparseness.
        assert s["edge_connectivity"] <= 3
