"""End-to-end integration tests across subsystem boundaries.

Each test exercises a realistic multi-package flow rather than one unit:
topology → routing → distance → search → mapping → simulation.
"""

import numpy as np
import pytest

from repro.core.mapping import Workload
from repro.core.scheduler import CommunicationAwareScheduler
from repro.distance.table import build_distance_table, hop_distance_table
from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.search.tabu import TabuSearch
from repro.simulation.config import SimulationConfig
from repro.simulation.network import WormholeNetworkSimulator
from repro.simulation.traffic import IntraClusterTraffic
from repro.topology.designed import clustered_random_topology
from repro.topology.irregular import random_irregular_topology

QUICK = SimulationConfig(warmup_cycles=200, measure_cycles=800, seed=11)


class TestEndToEnd:
    def test_scheduled_mapping_beats_random_in_simulation(self):
        """The headline claim, end to end on a fresh topology."""
        topo = random_irregular_topology(12, seed=123)
        sched = CommunicationAwareScheduler(topo)
        workload = Workload.uniform(4, 12)
        op = sched.schedule(workload, seed=0)
        rnd = sched.random_schedule(workload, seed=99)
        rt = RoutingTable(sched.routing)

        rate = 0.08  # deep saturation for both mappings
        acc = {}
        for name, res in (("op", op), ("rnd", rnd)):
            sim = WormholeNetworkSimulator(
                rt, IntraClusterTraffic(res.mapping), rate, QUICK
            )
            acc[name] = sim.run().accepted_flits_per_switch_cycle
        assert acc["op"] > acc["rnd"], (
            f"scheduled mapping ({acc['op']:.3f}) must out-deliver random "
            f"({acc['rnd']:.3f})"
        )

    def test_c_c_ranks_mappings_by_throughput(self):
        """Clustering coefficient orders mappings like measured throughput."""
        topo = random_irregular_topology(12, seed=7)
        sched = CommunicationAwareScheduler(topo)
        workload = Workload.uniform(3, 16)
        results = [sched.schedule(workload, seed=0)] + [
            sched.random_schedule(workload, seed=s) for s in (1, 2)
        ]
        rt = RoutingTable(sched.routing)
        acc = []
        for res in results:
            sim = WormholeNetworkSimulator(
                rt, IntraClusterTraffic(res.mapping), 0.08, QUICK
            )
            acc.append(sim.run().accepted_flits_per_switch_cycle)
        c_cs = [r.c_c for r in results]
        # The best-C_c mapping must also be the best-throughput mapping.
        assert int(np.argmax(c_cs)) == int(np.argmax(acc)) == 0

    def test_planted_clusters_recovered_end_to_end(self):
        """On a topology with planted structure, Tabu finds the plant."""
        topo = clustered_random_topology(4, 4, seed=5)
        sched = CommunicationAwareScheduler(topo)
        res = sched.schedule(Workload.uniform(4, 16), seed=0)
        planted = [tuple(range(4 * c, 4 * c + 4)) for c in range(4)]
        found = set(res.partition.clusters())
        # At least 3 of 4 planted clusters recovered exactly (the search may
        # trade two switches if the random chords make that optimal).
        assert len(found & set(planted)) >= 3

    def test_hop_table_ablation_is_weaker_or_equal(self):
        """Using hop counts instead of equivalent distances never improves
        the achieved equivalent-distance objective."""
        topo = random_irregular_topology(12, seed=3)
        routing = UpDownRouting(topo)
        eq_table = build_distance_table(routing)
        hop_table = hop_distance_table(routing)
        workload = Workload.uniform(4, 12)

        sched_eq = CommunicationAwareScheduler(topo, routing=routing,
                                               table=eq_table)
        sched_hop = CommunicationAwareScheduler(topo, routing=routing,
                                                table=hop_table)
        res_eq = sched_eq.schedule(workload, seed=0)
        res_hop = sched_hop.schedule(workload, seed=0)
        # Score both partitions under the equivalent-distance criterion.
        f_eq = sched_eq.evaluate(res_eq.partition)["F_G"]
        f_hop = sched_eq.evaluate(res_hop.partition)["F_G"]
        assert f_eq <= f_hop + 1e-9

    def test_full_pipeline_deterministic(self):
        """Same seeds end to end -> identical measured numbers."""
        def run():
            topo = random_irregular_topology(10, seed=55)
            sched = CommunicationAwareScheduler(
                topo, search=TabuSearch(restarts=3)
            )
            res = sched.schedule(Workload.uniform(2, 20), seed=4)
            rt = RoutingTable(sched.routing)
            sim = WormholeNetworkSimulator(
                rt, IntraClusterTraffic(res.mapping), 0.02, QUICK
            )
            out = sim.run()
            return (res.f_g, out.flits_consumed_measured, out.avg_latency)

        assert run() == run()
