"""Tests for the resilient process-pool executor layer."""

import multiprocessing
import os
import time

import pytest

import repro.parallel as parallel_mod
from repro.checkpoint import SweepCheckpoint
from repro.obs.sinks import MemorySink
from repro.obs.trace import Tracer, use_tracer
import random

from repro.parallel import (
    WORKERS_ENV,
    JobTimeoutError,
    _backoff_delay,
    backoff_delay,
    detect_workers,
    parallel_map,
    parallel_starmap,
    resolve_workers,
)


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _mark_and_square(job):
    """Append a marker per execution (O_APPEND is atomic), then square."""
    x, marker = job
    fd = os.open(marker, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, b"%d\n" % x)
    finally:
        os.close(fd)
    return x * x


def _crash_worker_on(job):
    """Kill the whole worker process for the poisoned job (pool workers only)."""
    x, marker, poison = job
    if x == poison and multiprocessing.current_process().name != "MainProcess":
        time.sleep(0.2)       # let earlier jobs complete first
        os._exit(1)           # hard kill: BrokenProcessPool upstream
    return _mark_and_square((x, marker))


class _FlakyThenOk:
    """Fails ``failures`` times, then succeeds (records each attempt)."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, x):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"transient failure #{self.calls}")
        return x * x


def _slow_square(x):
    time.sleep(1.5)
    return x * x


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1

    def test_explicit_int(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4

    def test_auto_detects_cpus(self):
        assert resolve_workers("auto") == detect_workers()
        assert resolve_workers(0) == detect_workers()
        assert resolve_workers("AUTO") == detect_workers()

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3
        monkeypatch.setenv(WORKERS_ENV, "auto")
        assert resolve_workers() == detect_workers()
        monkeypatch.setenv(WORKERS_ENV, "")
        assert resolve_workers() == 1

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(2) == 2

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_garbage_string_raises(self):
        with pytest.raises(ValueError):
            resolve_workers("many")

    def test_detect_workers_positive(self):
        assert detect_workers() >= 1


class TestParallelMap:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_preserves_order(self, workers):
        jobs = list(range(10))
        assert parallel_map(_square, jobs, workers=workers) == [
            x * x for x in jobs
        ]

    def test_empty_jobs(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_job_stays_serial(self):
        assert parallel_map(_square, [3], workers=8) == [9]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_exceptions_propagate(self, workers):
        with pytest.raises(ValueError):
            parallel_map(int, ["1", "nope", "3"], workers=workers)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_starmap(self, workers):
        jobs = [(1, 2), (3, 4), (5, 6)]
        assert parallel_starmap(_add, jobs, workers=workers) == [3, 7, 11]

    def test_serial_and_parallel_identical(self):
        jobs = list(range(20))
        assert parallel_map(_square, jobs, workers=1) == parallel_map(
            _square, jobs, workers=3
        )


class TestPartialRecovery:
    def test_crashing_worker_keeps_completed_results(self, tmp_path):
        # Job 5 hard-kills its worker after the earlier jobs finished.
        # The pool dies (BrokenProcessPool); the fallback must keep every
        # completed result and re-run ONLY the missing jobs serially.
        marker = str(tmp_path / "runs.log")
        jobs = [(x, marker, 5) for x in range(8)]
        with pytest.warns(RuntimeWarning, match="completed results are kept"):
            out = parallel_map(_crash_worker_on, jobs, workers=2)
        assert out == [x * x for x in range(8)]
        runs = [int(l) for l in
                open(marker).read().splitlines()]
        # Every job ran at least once, and the early jobs that completed
        # in the pool were NOT re-run by the serial fallback.
        assert sorted(set(runs)) == list(range(8))
        assert runs.count(0) == 1
        assert runs.count(1) == 1

    def test_fallback_reruns_only_missing(self, tmp_path, monkeypatch):
        # Force pool creation to fail outright: all jobs run serially once.
        marker = str(tmp_path / "runs.log")

        def boom(*a, **k):
            raise OSError("no fork for you")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        jobs = [(x, marker) for x in range(6)]
        with pytest.warns(RuntimeWarning):
            out = parallel_map(_mark_and_square, jobs, workers=4)
        assert out == [x * x for x in range(6)]
        runs = [int(l) for l in open(marker).read().splitlines()]
        assert sorted(runs) == list(range(6))


class TestRetries:
    def test_backoff_delay_is_full_jitter_within_bounds(self):
        # Full jitter: uniform in [0, min(cap, base * 2**attempt)].  The
        # distribution check: every draw respects the ceiling, draws for
        # the same attempt differ (decorrelation), and the ceiling grows
        # exponentially until the cap clamps it.
        base, cap = parallel_mod.BACKOFF_BASE, parallel_mod.BACKOFF_CAP
        for attempt in range(8):
            ceiling = min(cap, base * 2 ** attempt)
            draws = [backoff_delay(attempt) for _ in range(200)]
            assert all(0.0 <= d <= ceiling for d in draws)
            assert len(set(draws)) > 1          # jittered, not a schedule
            assert max(draws) > 0.5 * ceiling   # spans the range

    def test_backoff_delay_hard_cap_for_any_attempt(self):
        for attempt in (20, 50, 500):
            assert 0.0 <= backoff_delay(attempt) <= parallel_mod.BACKOFF_CAP

    def test_backoff_delay_seeded_rng_is_reproducible(self):
        a = [backoff_delay(k, rng=random.Random(7)) for k in range(5)]
        b = [backoff_delay(k, rng=random.Random(7)) for k in range(5)]
        assert a == b

    def test_backoff_delay_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="attempt"):
            backoff_delay(-1)
        with pytest.raises(ValueError, match="base and cap"):
            backoff_delay(0, base=-0.1)

    def test_serial_retries_until_success(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(parallel_mod, "_sleep", sleeps.append)
        fn = _FlakyThenOk(failures=2)
        assert parallel_map(fn, [3], workers=1, retries=2) == [9]
        assert fn.calls == 3
        base = parallel_mod.BACKOFF_BASE
        assert len(sleeps) == 2
        assert 0.0 <= sleeps[0] <= base
        assert 0.0 <= sleeps[1] <= 2 * base

    def test_serial_retries_exhausted_raises(self, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_sleep", lambda s: None)
        fn = _FlakyThenOk(failures=5)
        with pytest.raises(RuntimeError, match="transient failure"):
            parallel_map(fn, [3], workers=1, retries=2)

    def test_zero_retries_propagates_unchanged(self):
        with pytest.raises(ValueError):
            parallel_map(int, ["1", "nope"], workers=1)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            parallel_map(_square, [1], retries=-1)


class TestTimeout:
    def test_pool_timeout_raises_job_timeout(self):
        jobs = list(range(3))
        with pytest.raises(JobTimeoutError, match="timeout"):
            parallel_map(_slow_square, jobs, workers=2, timeout=0.1)

    def test_job_timeout_is_a_timeout_error(self):
        # ...but must NOT be swallowed by the OSError pool-died fallback
        # (TimeoutError subclasses OSError): the raise above proves that.
        assert issubclass(JobTimeoutError, TimeoutError)

    def test_fast_jobs_beat_the_timeout(self):
        assert parallel_map(_square, [1, 2, 3], workers=2, timeout=30) == [
            1, 4, 9
        ]

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            parallel_map(_square, [1], timeout=0)


class TestLifecycleEvents:
    def test_serial_jobs_emit_started_and_completed(self):
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            parallel_map(_square, [1, 2], workers=1)
        started = sink.by_name("parallel.job.started")
        completed = sink.by_name("parallel.job.completed")
        assert [e["attrs"]["job"] for e in started] == [0, 1]
        assert [e["attrs"]["job"] for e in completed] == [0, 1]
        assert all(e["attrs"]["attempts"] == 1 for e in completed)
        (span_rec,) = sink.by_name("parallel.map")
        assert span_rec["attrs"]["jobs"] == 2
        assert span_rec["attrs"]["mode"] == "serial"

    def test_pool_jobs_emit_scheduled_and_completed(self):
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            parallel_map(_square, [1, 2, 3], workers=2)
        assert len(sink.by_name("parallel.job.scheduled")) == 3
        assert len(sink.by_name("parallel.job.completed")) == 3
        (span_rec,) = sink.by_name("parallel.map")
        assert span_rec["attrs"]["mode"] == "pool"

    def test_retry_events_carry_attempt_and_backoff(self, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_sleep", lambda s: None)
        sink = MemorySink()
        fn = _FlakyThenOk(failures=2)
        with use_tracer(Tracer(sink)):
            parallel_map(fn, [3], workers=1, retries=2)
        retries = sink.by_name("parallel.job.retry")
        assert [e["attrs"]["attempt"] for e in retries] == [1, 2]
        base = parallel_mod.BACKOFF_BASE
        delays = [e["attrs"]["delay_seconds"] for e in retries]
        assert 0.0 <= delays[0] <= base
        assert 0.0 <= delays[1] <= 2 * base
        assert all("transient failure" in e["attrs"]["error"]
                   for e in retries)
        assert all(e["attrs"]["retries"] == 2 for e in retries)
        (done,) = sink.by_name("parallel.job.completed")
        assert done["attrs"]["attempts"] == 3

    def test_timeout_emits_timed_out_event(self):
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            with pytest.raises(JobTimeoutError):
                parallel_map(_slow_square, [1, 2], workers=2, timeout=0.1)
        timed_out = sink.by_name("parallel.job.timed_out")
        assert timed_out and timed_out[0]["attrs"]["timeout_seconds"] == 0.1

    def test_checkpoint_resume_event(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        ck = SweepCheckpoint(path, key="k", total=3)
        ck.record(0, 1)
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            parallel_map(_square, [1, 2, 3],
                         checkpoint=SweepCheckpoint(path, key="k", total=3))
        (load,) = sink.by_name("checkpoint.load")
        assert load["attrs"]["completed"] == 1
        (resume,) = sink.by_name("checkpoint.resume")
        assert resume["attrs"]["completed"] == 1
        assert resume["attrs"]["total"] == 3

    def test_no_tracer_means_no_overhead_errors(self):
        # The instrumented paths must run cleanly with telemetry off.
        assert parallel_map(_square, [1, 2], workers=1) == [1, 4]

    def test_forked_workers_do_not_write_to_the_trace_file(self, tmp_path):
        # Workers inherit the tracer contextvar and the open JSONL sink
        # under fork; the pool initializer detaches telemetry, so the
        # trace must stay a valid single-writer file (manifest first,
        # exactly once) even for pooled runs.
        from repro.obs import collect_manifest, trace_run
        from repro.obs.schema import validate_trace_file

        path = tmp_path / "run.jsonl"
        manifest = collect_manifest("test", [], workers=2)
        with trace_run(path, manifest=manifest):
            assert parallel_map(_square, [1, 2, 3], workers=2) == [1, 4, 9]
        counts = validate_trace_file(path)
        assert counts["manifest"] == 1
        assert counts["metrics"] == 1


class TestCheckpointIntegration:
    def test_completed_jobs_are_skipped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        ck = SweepCheckpoint(path, key="k")
        assert parallel_map(_square, [1, 2, 3], checkpoint=ck) == [1, 4, 9]
        assert len(ck) == 3
        # Resume: fn would now fail loudly if any job were re-run.
        ck2 = SweepCheckpoint(path, key="k")
        out = parallel_map(_boom, [1, 2, 3], checkpoint=ck2)
        assert out == [1, 4, 9]

    def test_partial_checkpoint_resumes_missing_only(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        ck = SweepCheckpoint(path, key="k", total=4)
        ck.record(0, 0)
        ck.record(2, 4)
        out = parallel_map(_square, [0, 1, 2, 3],
                           checkpoint=SweepCheckpoint(path, key="k", total=4))
        assert out == [0, 1, 4, 9]


def _boom(x):
    raise AssertionError("job re-ran despite being checkpointed")


class TestWorkerPool:
    def test_construction_is_lazy(self):
        pool = parallel_mod.WorkerPool(2)
        assert not pool.active and not pool.closed
        pool.close()

    def test_map_reuses_one_executor_across_calls(self):
        with parallel_mod.WorkerPool(2) as pool:
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
            executor = pool._executor
            assert pool.map(_square, [4, 5]) == [16, 25]
            assert pool._executor is executor      # same processes, warm
        assert pool.closed and not pool.active

    def test_pool_results_match_serial(self):
        serial = parallel_map(_square, list(range(10)), workers=1)
        with parallel_mod.WorkerPool(3) as pool:
            pooled = pool.map(_square, list(range(10)))
        assert pooled == serial

    def test_submit_single_jobs(self):
        with parallel_mod.WorkerPool(2) as pool:
            futures = [pool.submit(_square, x) for x in (2, 3)]
            assert [f.result() for f in futures] == [4, 9]

    def test_closed_pool_refuses_work(self):
        pool = parallel_mod.WorkerPool(2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(_square, 1)

    def test_restart_discards_workers_but_keeps_the_pool_usable(self):
        with parallel_mod.WorkerPool(2) as pool:
            assert pool.map(_square, [1, 2]) == [1, 4]
            pool.restart()
            assert not pool.active and not pool.closed
            assert pool.map(_square, [3]) == [9]

    def test_terminate_reaps_worker_processes(self):
        pool = parallel_mod.WorkerPool(2)
        assert pool.map(_slow_square, [1, 2]) == [1, 4]
        procs = list(pool._executor._processes.values())
        assert procs
        pool.terminate()
        for proc in procs:
            assert not proc.is_alive()
        assert pool.closed

    def test_keyboard_interrupt_exit_reaps_workers(self):
        # The KeyboardInterrupt teardown contract: leaving the with-block
        # on a BaseException must kill and join the worker processes, not
        # leave them waiting on the job queue forever.
        pool = parallel_mod.WorkerPool(2)
        procs = []
        with pytest.raises(KeyboardInterrupt):
            with pool:
                assert pool.map(_square, [1, 2]) == [1, 4]
                procs = list(pool._executor._processes.values())
                raise KeyboardInterrupt()
        assert procs
        for proc in procs:
            assert not proc.is_alive()
        assert pool.closed

    def test_clean_exit_waits_for_inflight_jobs(self):
        with parallel_mod.WorkerPool(2) as pool:
            future = pool.submit(_slow_square, 7)
        assert future.result(timeout=0) == 49   # already done at exit


class TestParallelMapOnSharedPool:
    def test_shared_pool_stays_open_after_map(self):
        with parallel_mod.WorkerPool(2) as pool:
            parallel_map(_square, [1, 2], pool=pool)
            assert not pool.closed
            assert parallel_map(_square, [3], pool=pool) == [9]

    def test_worker_crash_on_shared_pool_restarts_not_closes(self, tmp_path):
        marker = str(tmp_path / "marker")
        with parallel_mod.WorkerPool(2) as pool:
            jobs = [(x, marker, 2) for x in range(4)]
            out = parallel_map(_crash_worker_on, jobs, pool=pool)
            assert out == [0, 1, 4, 9]
            # The pool survived the BrokenProcessPool and is still usable.
            assert not pool.closed
            assert pool.map(_square, [5]) == [25]

    def test_timeout_on_shared_pool_keeps_it_usable(self):
        # Two jobs so the map takes the pool path (timeouts are enforced
        # in pool mode only); the hang restarts the shared pool's workers
        # but leaves the pool itself open for its next user.
        with parallel_mod.WorkerPool(2) as pool:
            with pytest.raises(JobTimeoutError):
                parallel_map(_slow_square, [100, 200], pool=pool,
                             timeout=0.05)
            assert not pool.closed
            assert pool.map(_square, [6, 7]) == [36, 49]
