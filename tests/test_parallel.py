"""Tests for the process-pool executor layer."""

import pytest

from repro.parallel import (
    WORKERS_ENV,
    detect_workers,
    parallel_map,
    parallel_starmap,
    resolve_workers,
)


def _square(x):
    return x * x


def _add(a, b):
    return a + b


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1

    def test_explicit_int(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4

    def test_auto_detects_cpus(self):
        assert resolve_workers("auto") == detect_workers()
        assert resolve_workers(0) == detect_workers()
        assert resolve_workers("AUTO") == detect_workers()

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3
        monkeypatch.setenv(WORKERS_ENV, "auto")
        assert resolve_workers() == detect_workers()
        monkeypatch.setenv(WORKERS_ENV, "")
        assert resolve_workers() == 1

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(2) == 2

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_garbage_string_raises(self):
        with pytest.raises(ValueError):
            resolve_workers("many")

    def test_detect_workers_positive(self):
        assert detect_workers() >= 1


class TestParallelMap:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_preserves_order(self, workers):
        jobs = list(range(10))
        assert parallel_map(_square, jobs, workers=workers) == [
            x * x for x in jobs
        ]

    def test_empty_jobs(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_job_stays_serial(self):
        assert parallel_map(_square, [3], workers=8) == [9]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_exceptions_propagate(self, workers):
        with pytest.raises(ValueError):
            parallel_map(int, ["1", "nope", "3"], workers=workers)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_starmap(self, workers):
        jobs = [(1, 2), (3, 4), (5, 6)]
        assert parallel_starmap(_add, jobs, workers=workers) == [3, 7, 11]

    def test_serial_and_parallel_identical(self):
        jobs = list(range(20))
        assert parallel_map(_square, jobs, workers=1) == parallel_map(
            _square, jobs, workers=3
        )
