"""Trace-record schema validation and whole-file checks."""

import json

import pytest

from repro.obs.manifest import collect_manifest
from repro.obs.schema import SchemaError, validate_record, validate_trace_file
from repro.obs.sinks import JsonlSink
from repro.obs.run import trace_run
from repro.obs.trace import event, span


def _span_record(**over):
    rec = {"type": "span", "name": "s", "span_id": 1, "parent_id": None,
           "t_start": 1.0, "t_end": 2.0, "duration": 1.0, "attrs": {}}
    rec.update(over)
    return rec


class TestValidateRecord:
    def test_valid_manifest(self):
        rec = collect_manifest("x", seed=1, engine="fast").to_record()
        assert validate_record(rec) == "manifest"

    def test_valid_span_and_event(self):
        assert validate_record(_span_record()) == "span"
        assert validate_record(
            {"type": "event", "name": "e", "t": 1.0, "span_id": None,
             "attrs": {"k": 1}}
        ) == "event"

    def test_valid_metrics(self):
        rec = {"type": "metrics", "t": 1.0,
               "metrics": {"counters": {}, "gauges": {}, "histograms": {}}}
        assert validate_record(rec) == "metrics"

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            validate_record({"type": "nope"})

    def test_missing_field_rejected(self):
        rec = _span_record()
        del rec["span_id"]
        with pytest.raises(SchemaError):
            validate_record(rec)

    def test_wrong_type_rejected(self):
        with pytest.raises(SchemaError):
            validate_record(_span_record(name=7))

    def test_negative_duration_rejected(self):
        with pytest.raises(SchemaError):
            validate_record(_span_record(duration=-1.0))

    def test_time_ordering_enforced(self):
        with pytest.raises(SchemaError):
            validate_record(_span_record(t_start=5.0, t_end=1.0))

    def test_metrics_sections_required(self):
        with pytest.raises(SchemaError):
            validate_record({"type": "metrics", "t": 1.0,
                             "metrics": {"counters": {}}})


class TestValidateFile:
    def test_real_trace_run_validates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        manifest = collect_manifest("test", seed=1, engine="fast")
        with trace_run(path, manifest=manifest):
            with span("outer", k=1):
                event("tick", n=2)
        counts = validate_trace_file(path)
        assert counts == {"manifest": 1, "span": 1, "event": 1, "metrics": 1}

    def test_manifest_must_be_first(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "event", "name": "e", "t": 1.0, "attrs": {}})
        sink.emit(collect_manifest("x").to_record())
        sink.close()
        with pytest.raises(SchemaError, match="first"):
            validate_trace_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            validate_trace_file(path)

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "event", "name": "e", "t": 1.0, "attrs": {}}\n'
                        "not json\n")
        with pytest.raises(SchemaError, match="invalid JSON"):
            validate_trace_file(path)

    def test_error_carries_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"type": "nope"}) + "\n")
        with pytest.raises(SchemaError, match=":1:"):
            validate_trace_file(path)
