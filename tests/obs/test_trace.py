"""Tracer behaviour: nesting, context scoping, no-op mode, attributes."""

import pytest

from repro.obs.sinks import MemorySink
from repro.obs.trace import (
    TraceEvent,
    Tracer,
    current_tracer,
    event,
    span,
    use_tracer,
)


@pytest.fixture()
def sink():
    return MemorySink()


@pytest.fixture()
def tracer(sink):
    return Tracer(sink)


class TestSpans:
    def test_span_records_duration_and_name(self, tracer, sink):
        with tracer.span("work", size=3):
            pass
        (rec,) = sink.by_type("span")
        assert rec["name"] == "work"
        assert rec["attrs"] == {"size": 3}
        assert rec["duration"] >= 0
        assert rec["t_end"] >= rec["t_start"]

    def test_nested_spans_carry_parent_ids(self, tracer, sink):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        inner_rec, outer_rec = sink.by_type("span")  # children emit first
        assert inner_rec["name"] == "inner"
        assert inner_rec["parent_id"] == outer.span_id
        assert outer_rec["parent_id"] is None
        assert inner.span_id != outer.span_id

    def test_siblings_share_parent(self, tracer, sink):
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, _ = sink.by_type("span")
        assert a["parent_id"] == b["parent_id"] == root.span_id

    def test_set_attaches_attributes_before_exit(self, tracer, sink):
        with tracer.span("work") as sp:
            sp.set(result=42, extra="x")
        (rec,) = sink.by_type("span")
        assert rec["attrs"] == {"result": 42, "extra": "x"}

    def test_exception_annotates_and_propagates(self, tracer, sink):
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        (rec,) = sink.by_type("span")
        assert "boom" in rec["attrs"]["error"]

    def test_events_attach_to_current_span(self, tracer, sink):
        with tracer.span("outer") as outer:
            tracer.event("tick", n=1)
        (rec,) = sink.by_type("event")
        assert rec["name"] == "tick"
        assert rec["span_id"] == outer.span_id
        assert rec["attrs"] == {"n": 1}


class TestContextScoping:
    def test_no_tracer_by_default(self):
        assert current_tracer() is None

    def test_use_tracer_installs_and_restores(self, tracer):
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_module_helpers_route_to_active_tracer(self, tracer, sink):
        with use_tracer(tracer):
            with span("work", k=1):
                event("tick")
        assert len(sink.by_type("span")) == 1
        assert len(sink.by_type("event")) == 1

    def test_module_helpers_are_noops_without_tracer(self):
        # Must not raise, must not allocate a real handle.
        with span("work", k=1) as sp:
            sp.set(anything="ignored")
            event("tick", n=2)

    def test_disabled_span_is_a_shared_singleton(self):
        assert span("a") is span("b")


class TestTraceEventRoundTrip:
    def test_span_record_round_trip(self):
        ev = TraceEvent(kind="span", name="s", t=1.5, duration=0.25,
                        span_id=3, parent_id=1, attrs={"k": "v"})
        assert TraceEvent.from_record(ev.to_record()) == ev

    def test_event_record_round_trip(self):
        ev = TraceEvent(kind="event", name="e", t=2.0, span_id=None,
                        attrs={"n": 1})
        assert TraceEvent.from_record(ev.to_record()) == ev

    def test_from_record_rejects_other_types(self):
        with pytest.raises(ValueError):
            TraceEvent.from_record({"type": "manifest"})
