"""Run manifests: collection and record round-trips."""

import repro
from repro.obs.manifest import RunManifest, collect_manifest


class TestCollect:
    def test_captures_identity_and_versions(self):
        m = collect_manifest("simulate", ["--seed", "7"], seed=7,
                             engine="fast", workers=None,
                             extra={"note": "test"})
        assert m.command == "simulate"
        assert m.argv == ["--seed", "7"]
        assert m.seed == 7
        assert m.engine == "fast"
        assert m.workers is None
        assert m.workers_resolved >= 1
        assert m.package_version == repro.__version__
        assert m.python_version  # e.g. "3.11.7"
        assert m.created_unix > 0
        assert m.extra == {"note": "test"}

    def test_workers_request_recorded_as_given(self):
        m = collect_manifest("x", workers="auto")
        assert m.workers == "auto"
        assert m.workers_resolved >= 1


class TestRecordRoundTrip:
    def test_round_trip_preserves_fields(self):
        m = collect_manifest("figures", ["--fig", "3"], seed=42,
                             engine="reference", workers=2)
        rec = m.to_record()
        assert rec["type"] == "manifest"
        assert RunManifest.from_record(rec) == m

    def test_from_record_rejects_other_types(self):
        import pytest

        with pytest.raises(ValueError):
            RunManifest.from_record({"type": "span"})
