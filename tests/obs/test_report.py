"""Report rendering: parse a real trace and check every section appears."""

import json
import math

from repro.obs.manifest import collect_manifest
from repro.obs.metrics import inc
from repro.obs.report import (
    REPORT_JSON_SCHEMA,
    load_trace,
    render_report,
    report_file,
    report_json,
)
from repro.obs.run import trace_run
from repro.obs.trace import event, span


def _write_trace(path):
    manifest = collect_manifest("test", ["--x"], seed=7, engine="fast")
    with trace_run(path, manifest=manifest):
        with span("phase.outer", part="a"):
            with span("phase.inner"):
                pass
        inc("cache.tables.hits", 3)
        inc("cache.tables.misses", 1)
        inc("engine.fast.runs", 2)
        inc("engine.fast.arb_requests", 10)
        inc("engine.fast.arb_conflicts", 4)
        for i in range(2):
            event("search.restart", index=i, method="tabu", best_value=0.5 - i * 0.1,
                  iterations=5, evaluations=100, accepted=3, uphill=2,
                  tabu_masked=1, trace=[1.0, 0.8, 0.5 - i * 0.1])
        event("parallel.job.retry", job=0, attempt=1, delay_seconds=0.05)


class TestLoadTrace:
    def test_partitions_records_by_type(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        data = load_trace(path)
        assert data.manifest is not None and data.manifest.seed == 7
        assert {sp.name for sp in data.spans} == {"phase.outer", "phase.inner"}
        assert len(data.events_named("search.restart")) == 2
        assert data.counters["cache.tables.hits"] == 3.0

    def test_unknown_record_types_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        with open(path, "a") as fh:
            fh.write('{"type": "future-thing", "x": 1}\n')
        assert load_trace(path).counters  # still parses


class TestRenderReport:
    def test_all_sections_render(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        text = report_file(path)
        assert "run manifest" in text
        assert "seed=7" in text and "engine=fast" in text
        assert "per-phase time breakdown" in text
        assert "phase.outer" in text and "phase.inner" in text
        assert "slowest spans" in text
        assert "distance/routing-table caches" in text
        assert "0.75" in text  # tables hit rate 3/(3+1)
        assert "simulation engines" in text
        assert "search convergence" in text
        assert "best F_G so far" in text  # the trajectory plot
        assert "1 job retries" in text

    def test_self_time_subtracts_children(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        data = load_trace(path)
        outer = next(sp for sp in data.spans if sp.name == "phase.outer")
        inner = next(sp for sp in data.spans if sp.name == "phase.inner")
        assert inner.parent_id == outer.span_id
        assert outer.duration >= inner.duration

    def test_empty_sections_degrade_gracefully(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with trace_run(path):
            pass
        text = report_file(path)
        assert "(no spans recorded)" in text
        assert "search convergence" not in text
        assert "caches" not in text

    def test_nan_values_render_without_crashing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with trace_run(path):
            with span("work"):
                event("sweep.point", index=1, rate=0.1,
                      accepted=0.0, avg_latency=math.nan, saturated=False)
        assert render_report(load_trace(path))


class TestEdgeCases:
    """Damaged or partial traces must still load and render."""

    def test_no_manifest(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            fh.write('{"type": "span", "name": "work", "t_start": 0.0, '
                     '"t_end": 1.0, "duration": 1.0, "span_id": 1}\n')
        data = load_trace(path)
        assert data.manifest is None
        text = render_report(data)
        assert "run manifest" not in text and "work" in text
        assert report_json(data)["manifest"] is None

    def test_truncated_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        with open(path, "a") as fh:
            fh.write('{"type": "event", "name": "torn", "t": 1.')  # no \n
        data = load_trace(path)
        assert data.corrupt_lines == 1
        assert data.manifest is not None  # everything before survived
        text = render_report(data)
        assert "1 corrupt line(s) skipped" in text
        assert report_json(data)["corrupt_lines"] == 1

    def test_missing_parent_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            fh.write('{"type": "span", "name": "orphan", "t_start": 0.0, '
                     '"t_end": 2.0, "duration": 2.0, "span_id": 5, '
                     '"parent_id": 999}\n')
        data = load_trace(path)
        text = render_report(data)
        assert "orphan" in text
        phases = report_json(data)["phases"]
        assert phases[0]["phase"] == "orphan"
        assert phases[0]["total_s"] == 2.0

    def test_record_with_missing_keys_counted_corrupt(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            fh.write('{"type": "span", "t_start": 0.0}\n')  # no name
            fh.write('[1, 2, 3]\n')  # not even a record
        data = load_trace(path)
        assert data.corrupt_lines == 2
        assert render_report(data)


class TestReportJson:
    def test_schema_and_sections(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        payload = report_json(load_trace(path))
        assert payload["schema"] == REPORT_JSON_SCHEMA
        assert payload["manifest"]["seed"] == 7
        assert {row["phase"] for row in payload["phases"]} == {
            "phase.outer", "phase.inner"}
        assert payload["caches"]["tables"]["hit_rate"] == 0.75
        assert payload["engines"]["fast"]["conflict_rate"] == 0.4
        assert len(payload["search_restarts"]) == 2
        assert payload["recoveries"]["job_retries"] == 1
        assert payload["corrupt_lines"] == 0

    def test_strictly_valid_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with trace_run(path):
            with span("work"):
                event("sweep.point", avg_latency=math.nan)
        payload = report_json(load_trace(path))
        text = json.dumps(payload, allow_nan=False)  # raises on NaN/Inf
        assert json.loads(text) == payload

    def test_slowest_limit_respected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        payload = report_json(load_trace(path), slowest=1)
        assert len(payload["slowest_spans"]) == 1


class TestReportCli:
    """``repro report --json`` end to end, with a schema check."""

    def test_json_flag_emits_the_machine_readable_report(self, tmp_path,
                                                         capsys):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        _write_trace(path)
        assert main(["report", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == REPORT_JSON_SCHEMA
        required = {"schema", "manifest", "phases", "slowest_spans",
                    "caches", "engines", "search_restarts", "recoveries",
                    "metrics", "corrupt_lines"}
        assert required <= set(payload)
        assert payload["manifest"]["command"] == "test"

    def test_text_report_remains_the_default(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        _write_trace(path)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "{" not in out.splitlines()[0]

    def test_missing_file_exits_cleanly(self, tmp_path):
        import pytest

        from repro.cli import main

        with pytest.raises(SystemExit, match="no trace file"):
            main(["report", str(tmp_path / "missing.jsonl")])
