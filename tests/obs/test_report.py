"""Report rendering: parse a real trace and check every section appears."""

import math

from repro.obs.manifest import collect_manifest
from repro.obs.metrics import inc
from repro.obs.report import load_trace, render_report, report_file
from repro.obs.run import trace_run
from repro.obs.trace import event, span


def _write_trace(path):
    manifest = collect_manifest("test", ["--x"], seed=7, engine="fast")
    with trace_run(path, manifest=manifest):
        with span("phase.outer", part="a"):
            with span("phase.inner"):
                pass
        inc("cache.tables.hits", 3)
        inc("cache.tables.misses", 1)
        inc("engine.fast.runs", 2)
        inc("engine.fast.arb_requests", 10)
        inc("engine.fast.arb_conflicts", 4)
        for i in range(2):
            event("search.restart", index=i, method="tabu", best_value=0.5 - i * 0.1,
                  iterations=5, evaluations=100, accepted=3, uphill=2,
                  tabu_masked=1, trace=[1.0, 0.8, 0.5 - i * 0.1])
        event("parallel.job.retry", job=0, attempt=1, delay_seconds=0.05)


class TestLoadTrace:
    def test_partitions_records_by_type(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        data = load_trace(path)
        assert data.manifest is not None and data.manifest.seed == 7
        assert {sp.name for sp in data.spans} == {"phase.outer", "phase.inner"}
        assert len(data.events_named("search.restart")) == 2
        assert data.counters["cache.tables.hits"] == 3.0

    def test_unknown_record_types_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        with open(path, "a") as fh:
            fh.write('{"type": "future-thing", "x": 1}\n')
        assert load_trace(path).counters  # still parses


class TestRenderReport:
    def test_all_sections_render(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        text = report_file(path)
        assert "run manifest" in text
        assert "seed=7" in text and "engine=fast" in text
        assert "per-phase time breakdown" in text
        assert "phase.outer" in text and "phase.inner" in text
        assert "slowest spans" in text
        assert "distance/routing-table caches" in text
        assert "0.75" in text  # tables hit rate 3/(3+1)
        assert "simulation engines" in text
        assert "search convergence" in text
        assert "best F_G so far" in text  # the trajectory plot
        assert "1 job retries" in text

    def test_self_time_subtracts_children(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        data = load_trace(path)
        outer = next(sp for sp in data.spans if sp.name == "phase.outer")
        inner = next(sp for sp in data.spans if sp.name == "phase.inner")
        assert inner.parent_id == outer.span_id
        assert outer.duration >= inner.duration

    def test_empty_sections_degrade_gracefully(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with trace_run(path):
            pass
        text = report_file(path)
        assert "(no spans recorded)" in text
        assert "search convergence" not in text
        assert "caches" not in text

    def test_nan_values_render_without_crashing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with trace_run(path):
            with span("work"):
                event("sweep.point", index=1, rate=0.1,
                      accepted=0.0, avg_latency=math.nan, saturated=False)
        assert render_report(load_trace(path))
