"""Tests for the Prometheus text exposition exporter."""

import pytest

from repro.obs.export import (
    parse_exposition,
    prom_name,
    render_prometheus,
    validate_exposition,
)
from repro.obs.metrics import MetricsRegistry


def _registry():
    reg = MetricsRegistry()
    reg.counter("cache.dist.hit").inc(7)
    reg.counter("cache.dist.miss").inc(2)
    reg.gauge("pool.workers").set(4)
    h = reg.histogram("search.restart_cost")
    for v in range(1, 101):
        h.observe(float(v))
    return reg


class TestPromName:
    def test_dots_folded(self):
        assert prom_name("cache.dist.hit") == "repro_cache_dist_hit"

    def test_illegal_chars_folded(self):
        assert prom_name("a-b c/d") == "repro_a_b_c_d"

    def test_no_prefix(self):
        assert prom_name("ok_name", prefix="") == "ok_name"


class TestRenderPrometheus:
    def test_counters_get_total_suffix(self):
        text = render_prometheus(_registry().snapshot())
        assert "# TYPE repro_cache_dist_hit_total counter" in text
        assert "repro_cache_dist_hit_total 7" in text

    def test_gauges(self):
        text = render_prometheus(_registry().snapshot())
        assert "# TYPE repro_pool_workers gauge" in text
        assert "repro_pool_workers 4" in text

    def test_histogram_as_summary(self):
        text = render_prometheus(_registry().snapshot())
        assert "# TYPE repro_search_restart_cost summary" in text
        assert 'repro_search_restart_cost{quantile="0.5"}' in text
        assert "repro_search_restart_cost_count 100" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_empty_histogram_has_no_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("quiet")
        text = render_prometheus(reg.snapshot())
        assert "repro_quiet_count 0" in text
        assert "quantile" not in text

    def test_deterministic(self):
        snap = _registry().snapshot()
        assert render_prometheus(snap) == render_prometheus(snap)

    def test_roundtrip_parses_clean(self):
        text = render_prometheus(_registry().snapshot())
        assert validate_exposition(text) == []
        metrics = parse_exposition(text)
        assert metrics["repro_cache_dist_hit_total"] == [({}, 7.0)]
        quantiles = {
            labels["quantile"]: value
            for labels, value in metrics["repro_search_restart_cost"]
        }
        assert quantiles["0.5"] == pytest.approx(50.5)
        [(_, total)] = metrics["repro_search_restart_cost_sum"]
        assert total == pytest.approx(5050.0)


class TestParseExposition:
    def test_rejects_missing_final_newline(self):
        with pytest.raises(ValueError, match="newline"):
            parse_exposition("a 1")

    def test_rejects_bad_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_exposition("0bad_name 1\n")

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError, match="unparseable value"):
            parse_exposition("metric oops\n")

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown type"):
            parse_exposition("# TYPE m frobnicator\nm 1\n")

    def test_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_exposition("# TYPE m gauge\n# TYPE m counter\nm 1\n")

    def test_rejects_bad_label(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse_exposition("m{x=unquoted} 1\n")

    def test_accepts_special_values(self):
        metrics = parse_exposition("m NaN\nn +Inf\no -2.5e3\n")
        [(_, v)] = metrics["o"]
        assert v == -2500.0

    def test_empty_document_ok(self):
        assert parse_exposition("") == {}
        assert validate_exposition("") == []

    def test_validate_reports_errors(self):
        errs = validate_exposition("m oops\n")
        assert errs and "unparseable" in errs[0]
