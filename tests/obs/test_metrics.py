"""Metrics registry: instruments, snapshots, context scoping, inertness."""

import math
import random

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    inc,
    observe,
    set_gauge,
    use_registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_last_value_wins(self):
        g = Gauge("g")
        assert math.isnan(g.value)
        g.set(1)
        g.set(7)
        assert g.value == 7.0

    def test_histogram_snapshot_has_moments_and_percentiles(self):
        h = Histogram("h")
        for v in range(100):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == 0.0
        assert snap["max"] == 99.0
        assert snap["mean"] == pytest.approx(49.5)
        assert snap["p50"] == pytest.approx(49.5, abs=2.0)
        assert snap["p99"] >= snap["p95"] >= snap["p50"]

    def test_histogram_ignores_nan(self):
        h = Histogram("h")
        h.observe(math.nan)
        h.observe(1.0)
        assert h.snapshot()["count"] == 1

    def test_histogram_never_touches_global_random(self):
        random.seed(123)
        before = random.random()
        random.seed(123)
        h = Histogram("h", reservoir_capacity=4)
        for v in range(1000):
            h.observe(float(v))
        assert random.random() == before


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_snapshot_shape_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"] == {"a": 2.0, "b": 1.0}
        assert snap["gauges"] == {"g": 5.0}
        assert snap["histograms"]["h"]["count"] == 1


class TestContextHelpers:
    def test_helpers_are_noops_without_registry(self):
        assert current_registry() is None
        inc("x")
        set_gauge("g", 1.0)
        observe("h", 2.0)  # must not raise

    def test_helpers_route_to_active_registry(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert current_registry() is reg
            inc("x", 3)
            set_gauge("g", 1.5)
            observe("h", 2.0)
        assert current_registry() is None
        snap = reg.snapshot()
        assert snap["counters"]["x"] == 3.0
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1
