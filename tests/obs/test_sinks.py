"""Sink behaviour: in-memory collection, JSONL hygiene, sanitization."""

import json
import math

import pytest

from repro.obs.sinks import JsonlSink, MemorySink, sanitize


class TestMemorySink:
    def test_collects_in_order(self):
        sink = MemorySink()
        sink.emit({"type": "event", "name": "a"})
        sink.emit({"type": "span", "name": "b"})
        assert [r["name"] for r in sink.records] == ["a", "b"]
        assert sink.by_type("span") == [{"type": "span", "name": "b"}]
        assert sink.by_name("a") == [{"type": "event", "name": "a"}]

    def test_close_is_observable(self):
        sink = MemorySink()
        assert not sink.closed
        sink.close()
        assert sink.closed


class TestSanitize:
    def test_non_finite_floats_become_none(self):
        assert sanitize(math.nan) is None
        assert sanitize(math.inf) is None
        assert sanitize(-math.inf) is None
        assert sanitize(1.5) == 1.5

    def test_recurses_into_containers(self):
        out = sanitize({"a": [1.0, math.nan, (2.0, math.inf)], 3: "x"})
        assert out == {"a": [1.0, None, [2.0, None]], "3": "x"}

    def test_passthrough_for_other_types(self):
        assert sanitize("s") == "s"
        assert sanitize(7) == 7
        assert sanitize(None) is None


class TestJsonlSink:
    def test_writes_one_strict_json_line_per_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "event", "name": "a", "attrs": {"v": math.nan}})
        sink.emit({"type": "event", "name": "b", "attrs": {}})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["attrs"]["v"] is None  # NaN sanitized, strict JSON

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        JsonlSink(path).close()
        assert path.exists()

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError):
            sink.emit({"type": "event"})

    def test_records_flushed_before_close(self, tmp_path):
        # Per-record flushing keeps the userspace buffer empty, so a
        # forked child can never re-flush inherited bytes — and a
        # crashed run keeps everything emitted so far.
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "event", "name": "a"})
        assert json.loads(path.read_text())["name"] == "a"
        sink.close()

    def test_forked_child_writes_are_dropped(self, tmp_path, monkeypatch):
        import repro.obs.sinks as sinks_mod

        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "event", "name": "parent"})
        monkeypatch.setattr(sinks_mod.os, "getpid",
                            lambda: sink._pid + 1)
        sink.emit({"type": "event", "name": "child"})  # silently dropped
        sink.close()
        monkeypatch.undo()
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["parent"]
