"""trace_run wiring: manifest first, metrics last, context installation."""

import json

import pytest

from repro.obs.manifest import collect_manifest
from repro.obs.metrics import current_registry, inc
from repro.obs.run import trace_run
from repro.obs.sinks import MemorySink
from repro.obs.trace import current_tracer, span


class TestTraceRun:
    def test_installs_tracer_and_registry(self):
        sink = MemorySink()
        assert current_tracer() is None
        with trace_run(sink) as tracer:
            assert current_tracer() is tracer
            assert current_registry() is not None
        assert current_tracer() is None
        assert current_registry() is None

    def test_manifest_first_metrics_last(self):
        sink = MemorySink()
        manifest = collect_manifest("test", seed=3)
        with trace_run(sink, manifest=manifest):
            with span("work"):
                inc("things", 2)
        assert sink.records[0]["type"] == "manifest"
        assert sink.records[0]["seed"] == 3
        assert sink.records[-1]["type"] == "metrics"
        assert sink.records[-1]["metrics"]["counters"]["things"] == 2.0

    def test_metrics_snapshot_survives_exceptions(self):
        sink = MemorySink()
        with pytest.raises(RuntimeError):
            with trace_run(sink):
                inc("partial")
                raise RuntimeError("boom")
        assert sink.records[-1]["type"] == "metrics"
        assert sink.records[-1]["metrics"]["counters"]["partial"] == 1.0

    def test_path_opens_and_closes_jsonl_sink(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with trace_run(path):
            with span("work"):
                pass
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["type"] for r in lines] == ["span", "metrics"]

    def test_memory_sink_not_closed_by_trace_run(self):
        sink = MemorySink()
        with trace_run(sink):
            pass
        assert not sink.closed  # caller-owned sink stays open
