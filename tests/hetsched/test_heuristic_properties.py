"""Property-based tests for the computation-aware heuristics (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hetsched.evaluate import machine_loads, utilization
from repro.hetsched.heuristics import HEURISTICS
from repro.hetsched.workload import generate_etc


@st.composite
def etcs(draw):
    tasks = draw(st.integers(1, 40))
    machines = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 10_000))
    consistency = draw(st.sampled_from(
        ["consistent", "semiconsistent", "inconsistent"]
    ))
    return generate_etc(tasks, machines, seed=seed, consistency=consistency)


@given(etcs())
@settings(max_examples=40, deadline=None)
def test_all_heuristics_produce_valid_schedules(etc):
    for h in HEURISTICS.values():
        s = h.schedule(etc)
        s.validate(etc)


@given(etcs())
@settings(max_examples=40, deadline=None)
def test_makespan_lower_bounds(etc):
    """Makespan >= both classical lower bounds: the largest per-task best
    time, and the perfectly-balanced best-case load."""
    best_times = etc.min(axis=1)
    lb_task = float(best_times.max())
    lb_load = float(best_times.sum() / etc.shape[1])
    lb = max(lb_task, lb_load)
    for h in HEURISTICS.values():
        assert h.schedule(etc).makespan >= lb - 1e-9, h.name


@given(etcs())
@settings(max_examples=40, deadline=None)
def test_makespan_upper_bound(etc):
    """Makespan <= running everything serially on one machine at its worst."""
    ub = float(etc.max(axis=1).sum())
    for h in HEURISTICS.values():
        assert h.schedule(etc).makespan <= ub + 1e-9, h.name


@given(etcs())
@settings(max_examples=40, deadline=None)
def test_loads_sum_to_total_work(etc):
    for h in HEURISTICS.values():
        s = h.schedule(etc)
        loads = machine_loads(s, etc)
        expected = sum(etc[t, s.assignment[t]] for t in range(etc.shape[0]))
        assert np.isclose(loads.sum(), expected)
        assert 0 < utilization(s, etc) <= 1.0 + 1e-9


@given(etcs())
@settings(max_examples=30, deadline=None)
def test_duplex_dominates_minmax(etc):
    duplex = HEURISTICS["duplex"].schedule(etc).makespan
    minmin = HEURISTICS["minmin"].schedule(etc).makespan
    maxmin = HEURISTICS["maxmin"].schedule(etc).makespan
    assert duplex <= min(minmin, maxmin) + 1e-9
