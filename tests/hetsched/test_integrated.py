"""Tests for the integrated bottleneck-driven strategy selector."""

import numpy as np
import pytest

from repro.core.mapping import Workload
from repro.hetsched.integrated import IntegratedScheduler
from repro.hetsched.workload import generate_etc


@pytest.fixture
def integrated(topo16):
    return IntegratedScheduler(topo16)


@pytest.fixture
def etc64():
    return generate_etc(64, 64, seed=0)


class TestBottleneckEstimate:
    def test_zero_comm_picks_computation(self, integrated, workload16, etc64):
        est = integrated.estimate_bottleneck(workload16, etc64, 0.0)
        assert est.bottleneck == "computation"
        assert est.comm_pressure == 0.0

    def test_huge_comm_picks_communication(self, integrated, workload16, etc64):
        est = integrated.estimate_bottleneck(workload16, etc64, 1.0)
        assert est.bottleneck == "communication"
        assert est.comm_pressure > est.comp_pressure

    def test_capacity_positive(self, integrated, workload16, etc64):
        est = integrated.estimate_bottleneck(workload16, etc64, 0.1)
        assert est.comm_capacity_flits_per_switch > 0

    def test_negative_rate_rejected(self, integrated, workload16, etc64):
        with pytest.raises(ValueError):
            integrated.estimate_bottleneck(workload16, etc64, -0.1)

    def test_summary_string(self, integrated, workload16, etc64):
        est = integrated.estimate_bottleneck(workload16, etc64, 0.1)
        assert "->" in est.summary()


class TestSchedule:
    def test_communication_path(self, integrated, workload16, etc64):
        res = integrated.schedule(workload16, etc64, 1.0, seed=1)
        assert res.strategy == "communication"
        assert res.comm_result is not None
        assert res.comm_result.partition.sizes() == [4, 4, 4, 4]

    def test_computation_path(self, integrated, workload16, etc64):
        res = integrated.schedule(workload16, etc64, 0.0, seed=1)
        assert res.strategy == "computation"
        assert res.comp_result is not None
        assert res.comp_result.makespan > 0

    def test_threshold_moves_decision(self, topo16, workload16, etc64):
        # Find a rate where the default threshold picks computation but a
        # tiny threshold flips to communication.
        lo = IntegratedScheduler(topo16, threshold=1e-6)
        hi = IntegratedScheduler(topo16, threshold=1e6)
        rate = 0.05
        assert lo.estimate_bottleneck(workload16, etc64, rate).bottleneck == \
            "communication"
        assert hi.estimate_bottleneck(workload16, etc64, rate).bottleneck == \
            "computation"

    def test_invalid_threshold(self, topo16):
        with pytest.raises(ValueError):
            IntegratedScheduler(topo16, threshold=0)
