"""Tests for the computation-aware mapping heuristics."""

import numpy as np
import pytest

from repro.hetsched.heuristics import (
    HEURISTICS,
    MCT,
    MET,
    OLB,
    Duplex,
    MaxMin,
    MinMin,
)
from repro.hetsched.workload import generate_etc

ALL = list(HEURISTICS.values())


class TestSharedContract:
    @pytest.mark.parametrize("h", ALL, ids=[h.name for h in ALL])
    def test_schedule_is_valid(self, h):
        etc = generate_etc(40, 8, seed=1)
        s = h.schedule(etc)
        s.validate(etc)
        assert s.makespan > 0

    @pytest.mark.parametrize("h", ALL, ids=[h.name for h in ALL])
    def test_all_tasks_assigned(self, h):
        etc = generate_etc(25, 5, seed=2)
        s = h.schedule(etc)
        assert s.assignment.shape == (25,)
        assert set(s.tasks_of(0).tolist()).issubset(range(25))

    @pytest.mark.parametrize("h", ALL, ids=[h.name for h in ALL])
    def test_rejects_bad_etc(self, h):
        with pytest.raises(ValueError):
            h.schedule(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            h.schedule(np.ones(5))

    @pytest.mark.parametrize("h", ALL, ids=[h.name for h in ALL])
    def test_single_machine(self, h):
        etc = generate_etc(10, 1, seed=3)
        s = h.schedule(etc)
        assert s.makespan == pytest.approx(etc[:, 0].sum())


class TestSpecificBehaviour:
    def test_met_picks_per_task_minimum(self):
        etc = np.array([[1.0, 5.0], [4.0, 2.0]])
        s = MET().schedule(etc)
        assert s.assignment.tolist() == [0, 1]

    def test_met_ignores_load(self):
        # All tasks fastest on machine 0 -> MET piles them there.
        etc = np.array([[1.0, 10.0]] * 5)
        s = MET().schedule(etc)
        assert (s.assignment == 0).all()

    def test_olb_balances_counts(self):
        etc = np.ones((10, 2))
        s = OLB().schedule(etc)
        assert sorted(np.bincount(s.assignment, minlength=2).tolist()) == [5, 5]

    def test_mct_accounts_for_load(self):
        # Task 0 fills machine 0; task 1 prefers machine 0 statically but
        # completes sooner on the idle machine 1.
        etc = np.array([[1.0, 100.0], [1.0, 1.5]])
        s = MCT().schedule(etc)
        assert s.assignment.tolist() == [0, 1]

    def test_minmin_schedules_small_first(self):
        etc = np.array([[10.0, 10.0], [1.0, 1.0]])
        s = MinMin().schedule(etc)
        s.validate(etc)
        # The small task must not wait behind the big one on one machine.
        assert s.assignment[0] != s.assignment[1]

    def test_maxmin_prefers_large_first(self):
        etc = np.array([[10.0, 12.0], [1.0, 1.2], [1.0, 1.1]])
        s = MaxMin().schedule(etc)
        s.validate(etc)
        # Big task gets its best machine (0); small tasks distributed.
        assert s.assignment[0] == 0

    def test_duplex_no_worse_than_either(self):
        etc = generate_etc(30, 6, seed=4)
        d = Duplex().schedule(etc).makespan
        mn = MinMin().schedule(etc).makespan
        mx = MaxMin().schedule(etc).makespan
        assert d <= min(mn, mx) + 1e-9

    def test_mct_no_worse_than_olb_usually(self):
        # Over many instances, MCT (load + ETC aware) should dominate OLB
        # (load only) on average.
        wins = 0
        for seed in range(20):
            etc = generate_etc(50, 8, seed=seed)
            if MCT().schedule(etc).makespan <= OLB().schedule(etc).makespan:
                wins += 1
        assert wins >= 15

    def test_minmin_beats_met_on_consistent(self):
        # On consistent ETCs MET collapses onto the uniformly fastest
        # machine; Min-min should be far better on average.
        total_minmin, total_met = 0.0, 0.0
        for seed in range(10):
            etc = generate_etc(40, 8, consistency="consistent", seed=seed)
            total_minmin += MinMin().schedule(etc).makespan
            total_met += MET().schedule(etc).makespan
        assert total_minmin < total_met


class TestRegistry:
    def test_all_present(self):
        assert set(HEURISTICS) == {"olb", "met", "mct", "minmin", "maxmin",
                                   "duplex"}

    def test_names_match(self):
        for name, h in HEURISTICS.items():
            assert h.name == name
