"""Tests for ETC matrix generation."""

import numpy as np
import pytest

from repro.hetsched.workload import EtcConsistency, generate_etc


class TestGenerateEtc:
    def test_shape_and_positivity(self):
        etc = generate_etc(20, 8, seed=0)
        assert etc.shape == (20, 8)
        assert (etc > 0).all()

    def test_reproducible(self):
        a = generate_etc(10, 4, seed=7)
        b = generate_etc(10, 4, seed=7)
        assert np.allclose(a, b)

    def test_consistent_rows_sorted(self):
        etc = generate_etc(30, 6, consistency="consistent", seed=1)
        assert (np.diff(etc, axis=1) >= 0).all()

    def test_inconsistent_rows_not_sorted(self):
        etc = generate_etc(30, 6, consistency="inconsistent", seed=1)
        assert not (np.diff(etc, axis=1) >= 0).all()

    def test_semiconsistent_even_columns_sorted(self):
        etc = generate_etc(30, 8, consistency="semiconsistent", seed=2)
        even = etc[:, 0::2]
        assert (np.diff(even, axis=1) >= 0).all()

    def test_heterogeneity_scales_spread(self):
        low = generate_etc(200, 4, task_heterogeneity=2, seed=3)
        high = generate_etc(200, 4, task_heterogeneity=1000, seed=3)
        assert high.std() > low.std()

    def test_enum_accepted(self):
        etc = generate_etc(5, 3, consistency=EtcConsistency.CONSISTENT, seed=0)
        assert (np.diff(etc, axis=1) >= 0).all()

    @pytest.mark.parametrize("kwargs", [
        {"num_tasks": 0, "num_machines": 4},
        {"num_tasks": 4, "num_machines": 0},
        {"num_tasks": 4, "num_machines": 4, "task_heterogeneity": 0.5},
        {"num_tasks": 4, "num_machines": 4, "machine_heterogeneity": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            generate_etc(**kwargs)

    def test_unknown_consistency_rejected(self):
        with pytest.raises(ValueError):
            generate_etc(4, 4, consistency="bogus")
