"""Tests for schedule metrics."""

import numpy as np
import pytest

from repro.hetsched.evaluate import flowtime, machine_loads, makespan, utilization
from repro.hetsched.heuristics import MachineSchedule, MinMin
from repro.hetsched.workload import generate_etc


@pytest.fixture
def simple_schedule():
    etc = np.array([[2.0, 9.0], [9.0, 3.0], [1.0, 9.0]])
    assignment = np.array([0, 1, 0])
    ready = np.array([3.0, 3.0])
    return etc, MachineSchedule(assignment, ready, "manual")


class TestMetrics:
    def test_makespan(self, simple_schedule):
        _etc, s = simple_schedule
        assert makespan(s) == 3.0

    def test_machine_loads(self, simple_schedule):
        etc, s = simple_schedule
        loads = machine_loads(s, etc)
        assert loads.tolist() == [3.0, 3.0]

    def test_flowtime(self, simple_schedule):
        etc, s = simple_schedule
        # Machine 0 runs tasks 0 (finish 2) then 2 (finish 3); machine 1
        # runs task 1 (finish 3). Flowtime = 2 + 3 + 3.
        assert flowtime(s, etc) == pytest.approx(8.0)

    def test_utilization_perfect(self, simple_schedule):
        etc, s = simple_schedule
        assert utilization(s, etc) == pytest.approx(1.0)

    def test_utilization_below_one_in_general(self):
        etc = generate_etc(30, 6, seed=0)
        s = MinMin().schedule(etc)
        u = utilization(s, etc)
        assert 0 < u <= 1.0

    def test_validate_catches_corruption(self, simple_schedule):
        etc, s = simple_schedule
        s.ready[0] = 99.0
        with pytest.raises(ValueError, match="inconsistent"):
            s.validate(etc)

    def test_validate_catches_bad_machine(self, simple_schedule):
        etc, s = simple_schedule
        s.assignment[0] = 5
        with pytest.raises(ValueError):
            s.validate(etc)
