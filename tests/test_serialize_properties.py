"""Property-based round-trip tests for serialization (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import serialize
from repro.core.mapping import LogicalCluster, Partition, Workload
from repro.topology.irregular import random_irregular_topology


@given(st.integers(0, 5000), st.sampled_from([8, 10, 12, 16]))
@settings(max_examples=25, deadline=None)
def test_topology_roundtrip_property(seed, n):
    topo = random_irregular_topology(n, seed=seed)
    again = serialize.from_dict(serialize.to_dict(topo))
    assert again == topo
    assert again.hop_distances().tolist() == topo.hop_distances().tolist()


@given(st.lists(st.integers(-1, 3), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_partition_roundtrip_property(raw_labels):
    # Compress labels to the consecutive form Partition requires.
    used = sorted({x for x in raw_labels if x >= 0})
    remap = {old: i for i, old in enumerate(used)}
    labels = [remap.get(x, -1) for x in raw_labels]
    part = Partition(labels)
    again = serialize.from_dict(serialize.to_dict(part))
    assert again == part
    assert (again.labels == part.labels).all()


@given(st.lists(
    st.tuples(st.integers(1, 64),
              st.floats(0.0, 10.0, allow_nan=False)),
    min_size=1, max_size=6,
))
@settings(max_examples=50, deadline=None)
def test_workload_roundtrip_property(specs):
    w = Workload([
        LogicalCluster(f"app{i}", procs, comm_weight=weight)
        for i, (procs, weight) in enumerate(specs)
    ])
    again = serialize.from_dict(serialize.to_dict(w))
    assert again.num_clusters == w.num_clusters
    for a, b in zip(again.clusters, w.clusters):
        assert (a.name, a.num_processes) == (b.name, b.num_processes)
        assert np.isclose(a.comm_weight, b.comm_weight)
