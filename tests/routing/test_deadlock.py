"""Channel-dependency-graph deadlock analysis tests.

The central safety property of the simulator configuration: up*/down* is
deadlock-free on every topology, while unrestricted minimal routing on
cyclic topologies is not.
"""

import pytest

from repro.routing.deadlock import channel_dependency_graph, is_deadlock_free
from repro.routing.minimal import MinimalRouting
from repro.routing.updown import UpDownRouting
from repro.topology.designed import (
    binary_tree_topology,
    four_rings_topology,
    ring_topology,
    torus_topology,
)
from repro.topology.irregular import random_irregular_topology


class TestUpDownDeadlockFree:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_irregular(self, seed):
        topo = random_irregular_topology(12, seed=seed)
        assert is_deadlock_free(UpDownRouting(topo))

    def test_four_rings(self):
        assert is_deadlock_free(UpDownRouting(four_rings_topology()))

    def test_ring(self):
        assert is_deadlock_free(UpDownRouting(ring_topology(8)))

    def test_any_root(self):
        topo = random_irregular_topology(10, seed=3)
        for root in range(topo.num_switches):
            assert is_deadlock_free(UpDownRouting(topo, root=root))


class TestMinimalNotDeadlockFree:
    def test_ring_cycles(self):
        # All-minimal routing on an even ring creates a channel cycle.
        assert not is_deadlock_free(MinimalRouting(ring_topology(6)))

    def test_torus_cycles(self):
        assert not is_deadlock_free(MinimalRouting(torus_topology(3, 3)))

    def test_tree_is_safe(self):
        # No cycles in the topology => no cycles in the CDG.
        assert is_deadlock_free(MinimalRouting(binary_tree_topology(3)))


class TestCdgStructure:
    def test_nodes_are_directed_channels(self, topo16, routing16):
        deps = channel_dependency_graph(routing16)
        assert len(deps) == 2 * topo16.num_links
        for (u, v), succs in deps.items():
            assert topo16.has_link(u, v)
            for (a, b) in succs:
                assert a == v, "dependency must continue from the channel head"

    def test_updown_no_down_to_up_dependency(self, routing16):
        deps = channel_dependency_graph(routing16)
        for (u, v), succs in deps.items():
            if not routing16.is_up(u, v):      # arriving on a down channel
                for (a, b) in succs:
                    assert not routing16.is_up(a, b), \
                        "down->up dependency violates up*/down*"
