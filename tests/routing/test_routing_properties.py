"""Property-based tests on routing algorithms (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.routing.base import Phase
from repro.routing.minimal import MinimalRouting
from repro.routing.updown import UpDownRouting
from repro.topology.irregular import random_irregular_topology


@st.composite
def routed_networks(draw):
    n = draw(st.sampled_from([8, 10, 12, 14]))
    seed = draw(st.integers(0, 10_000))
    topo = random_irregular_topology(n, seed=seed)
    root = draw(st.integers(0, n - 1))
    return topo, UpDownRouting(topo, root=root)


@given(routed_networks())
@settings(max_examples=25, deadline=None)
def test_updown_connects_everything(net):
    topo, r = net
    d = r.distances()
    assert (d >= 0).all()
    assert (np.diag(d) == 0).all()
    off = d + np.eye(topo.num_switches)
    assert (off > 0).all(), "distinct switches must be at positive distance"


@given(routed_networks())
@settings(max_examples=25, deadline=None)
def test_updown_distance_sandwich(net):
    # hop distance <= legal distance <= level[src] + level[dst]
    topo, r = net
    d = r.distances()
    raw = topo.hop_distances()
    lv = r.level
    assert (d >= raw).all()
    bound = lv[:, None] + lv[None, :]
    assert (d <= bound + 0).all()


@given(routed_networks(), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_every_walked_path_is_legal_and_shortest(net, seed):
    topo, r = net
    rng = np.random.default_rng(seed)
    d = r.distances()
    n = topo.num_switches
    src, dst = rng.integers(0, n, size=2)
    if src == dst:
        return
    # Walk randomly through next_hops choices; any walk must be shortest.
    current, phase = int(src), Phase.UP
    steps = 0
    while current != dst:
        hops = r.next_hops(current, phase, int(dst))
        assert hops
        current, phase = hops[int(rng.integers(len(hops)))]
        steps += 1
        assert steps <= d[src, dst], "walk exceeded the legal shortest distance"
    assert steps == d[src, dst]


@given(routed_networks())
@settings(max_examples=20, deadline=None)
def test_link_support_symmetry_and_validity(net):
    topo, r = net
    n = topo.num_switches
    rng = np.random.default_rng(0)
    for _ in range(5):
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        links = r.links_on_shortest_paths(int(i), int(j))
        assert links == r.links_on_shortest_paths(int(j), int(i))
        for u, v in links:
            assert topo.has_link(u, v)


@given(st.integers(0, 5000))
@settings(max_examples=25, deadline=None)
def test_minimal_distances_are_metric(seed):
    topo = random_irregular_topology(10, seed=seed)
    d = MinimalRouting(topo).distances()
    n = topo.num_switches
    for j in range(n):
        via = d[:, j][:, None] + d[j, :][None, :]
        assert (d <= via).all(), "hop distances must satisfy the triangle inequality"
