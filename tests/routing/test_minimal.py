"""Tests for unrestricted minimal routing."""

import numpy as np
import pytest

from repro.routing.base import Phase
from repro.routing.minimal import MinimalRouting
from repro.topology.designed import mesh_topology, ring_topology
from repro.topology.graph import Topology


class TestDistances:
    def test_equals_hop_distances(self, topo16):
        r = MinimalRouting(topo16)
        assert (r.distances() == topo16.hop_distances()).all()

    def test_disconnected_rejected(self):
        t = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            MinimalRouting(t)


class TestNextHops:
    def test_all_minimal_neighbors_offered(self):
        t = mesh_topology(3, 3)
        r = MinimalRouting(t)
        # From corner 0 to opposite corner 8 both directions are minimal.
        hops = r.next_hops(0, Phase.UP, 8)
        assert {v for v, _ in hops} == {1, 3}

    def test_empty_at_destination(self, topo16):
        assert MinimalRouting(topo16).next_hops(2, Phase.UP, 2) == ()

    def test_phase_ignored(self, topo16):
        r = MinimalRouting(topo16)
        assert r.next_hops(0, Phase.UP, 5) == r.next_hops(0, Phase.DOWN, 5)

    def test_shortest_path_length(self, topo16):
        r = MinimalRouting(topo16)
        d = r.distances()
        path = r.shortest_path(0, 9)
        assert len(path) - 1 == d[0, 9]


class TestLinksOnShortestPaths:
    def test_ring_both_arcs_for_antipodes(self):
        t = ring_topology(6)
        r = MinimalRouting(t)
        # Nodes 0 and 3 are antipodal: both 3-hop arcs are minimal.
        links = r.links_on_shortest_paths(0, 3)
        assert links == frozenset(t.links)

    def test_ring_one_arc_for_neighbors(self):
        t = ring_topology(6)
        r = MinimalRouting(t)
        assert r.links_on_shortest_paths(0, 1) == frozenset({(0, 1)})

    def test_mesh_rectangle(self):
        t = mesh_topology(2, 2)
        r = MinimalRouting(t)
        links = r.links_on_shortest_paths(0, 3)
        assert links == frozenset(t.links)

    def test_subset_of_updown_distances(self, topo16, routing16):
        # Minimal distances never exceed up*/down* distances.
        m = MinimalRouting(topo16)
        assert (m.distances() <= routing16.distances()).all()

    def test_average_distance(self, topo16):
        r = MinimalRouting(topo16)
        d = r.distances().astype(float)
        n = topo16.num_switches
        expected = (d.sum()) / (n * (n - 1))
        assert r.average_distance() == pytest.approx(expected)
