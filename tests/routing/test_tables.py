"""Tests for precomputed routing tables."""

from repro.routing.base import Phase
from repro.routing.minimal import MinimalRouting
from repro.routing.tables import RoutingTable, build_routing_table


class TestRoutingTable:
    def test_matches_live_routing(self, routing16):
        table = RoutingTable(routing16)
        for dst in range(16):
            for src in range(16):
                for phase in (Phase.UP, Phase.DOWN):
                    assert table.hops(src, phase, dst) == \
                        routing16.next_hops(src, phase, dst)

    def test_path_length(self, routing16):
        table = RoutingTable(routing16)
        d = routing16.distances()
        assert table.path_length(0, 5) == d[0, 5]

    def test_builder_function(self, routing16):
        t = build_routing_table(routing16)
        assert isinstance(t, RoutingTable)
        assert t.routing is routing16

    def test_minimal_routing_table(self, topo16):
        r = MinimalRouting(topo16)
        table = RoutingTable(r)
        hops = table.hops(0, Phase.UP, 1)
        assert hops == r.next_hops(0, Phase.UP, 1)
