"""Tests for up*/down* routing."""

import numpy as np
import pytest

from repro.routing.base import Phase
from repro.routing.updown import UpDownRouting, bfs_levels, choose_root
from repro.topology.designed import ring_topology, star_topology
from repro.topology.graph import Topology
from repro.topology.irregular import random_irregular_topology


class TestLevelsAndRoot:
    def test_bfs_levels_star(self):
        t = star_topology(5)
        levels = bfs_levels(t, 0)
        assert levels[0] == 0 and (levels[1:] == 1).all()

    def test_choose_root_max_degree(self):
        t = star_topology(5)
        assert choose_root(t) == 0

    def test_choose_root_tie_lowest_id(self):
        t = ring_topology(6)  # all degree 2
        assert choose_root(t) == 0

    def test_root_out_of_range(self, topo16):
        with pytest.raises(ValueError):
            UpDownRouting(topo16, root=99)

    def test_disconnected_rejected(self):
        t = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="connected"):
            UpDownRouting(t)


class TestOrientation:
    def test_up_toward_root(self):
        t = star_topology(4)
        r = UpDownRouting(t, root=0)
        for leaf in (1, 2, 3):
            assert r.is_up(leaf, 0)
            assert not r.is_up(0, leaf)

    def test_same_level_tie_by_id(self):
        # Triangle rooted at 0: nodes 1, 2 are level 1; 1<2 so 2->1 is up.
        t = Topology(3, [(0, 1), (0, 2), (1, 2)])
        r = UpDownRouting(t, root=0)
        assert r.is_up(2, 1)
        assert not r.is_up(1, 2)

    def test_is_up_requires_link(self, topo16, routing16):
        non_neighbors = [
            (u, v) for u in range(16) for v in range(16)
            if u != v and not topo16.has_link(u, v)
        ]
        u, v = non_neighbors[0]
        with pytest.raises(ValueError):
            routing16.is_up(u, v)

    def test_up_end(self):
        t = star_topology(3)
        r = UpDownRouting(t, root=0)
        assert r.up_end(1, 0) == 0
        assert r.up_end(0, 2) == 0


class TestDistances:
    def test_diagonal_zero(self, routing16):
        d = routing16.distances()
        assert (np.diag(d) == 0).all()

    def test_symmetric(self, routing16):
        d = routing16.distances()
        assert (d == d.T).all()

    def test_at_least_hop_distance(self, topo16, routing16):
        legal = routing16.distances()
        raw = topo16.hop_distances()
        assert (legal >= raw).all()

    def test_bounded_by_via_root_path(self, topo16, routing16):
        # Any src can go up to the root then down: d <= level[s]+level[t].
        d = routing16.distances()
        lv = routing16.level
        for s in range(16):
            for t in range(16):
                assert d[s, t] <= lv[s] + lv[t]

    def test_ring_updown_detour(self):
        # On a 6-ring rooted at 0, the link 2-3 ... some minimal paths are
        # forbidden; distance between the two "deep" nodes on either side
        # of the ring bottom may exceed the raw hop distance.
        t = ring_topology(6)
        r = UpDownRouting(t, root=0)
        raw = t.hop_distances()
        legal = r.distances()
        assert (legal >= raw).all()
        assert (legal > raw).any(), "up*/down* on a ring must forbid some minimal path"

    def test_tree_equals_hop_distance(self):
        # On a tree every path is the unique minimal path and always legal.
        from repro.topology.designed import binary_tree_topology

        t = binary_tree_topology(4)
        r = UpDownRouting(t, root=0)
        assert (r.distances() == t.hop_distances()).all()


class TestNextHops:
    def test_empty_at_destination(self, routing16):
        assert routing16.next_hops(3, Phase.UP, 3) == ()

    def test_progress_invariant(self, routing16):
        # Following any returned hop decreases the remaining distance by 1.
        d = routing16.distances()
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                hops = routing16.next_hops(src, Phase.UP, dst)
                assert hops, f"no first hop {src}->{dst}"
                for v, ph in hops:
                    rest = routing16._backward_dist(dst)
                    assert rest[ph, v] == d[src, dst] - 1

    def test_down_phase_never_goes_up(self, topo16, routing16):
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                for v, ph in routing16.next_hops(src, Phase.DOWN, dst):
                    assert ph == Phase.DOWN
                    assert not routing16.is_up(src, v)

    def test_shortest_path_valid(self, topo16, routing16):
        d = routing16.distances()
        for src in range(0, 16, 3):
            for dst in range(0, 16, 5):
                if src == dst:
                    continue
                path = routing16.shortest_path(src, dst)
                assert path[0] == src and path[-1] == dst
                assert len(path) - 1 == d[src, dst]
                for a, b in zip(path, path[1:]):
                    assert topo16.has_link(a, b)

    def test_path_is_up_then_down(self, topo16, routing16):
        for src in range(0, 16, 2):
            for dst in range(1, 16, 3):
                if src == dst:
                    continue
                path = routing16.shortest_path(src, dst)
                seen_down = False
                for a, b in zip(path, path[1:]):
                    if routing16.is_up(a, b):
                        assert not seen_down, f"up after down on {path}"
                    else:
                        seen_down = True


class TestLinksOnShortestPaths:
    def test_empty_for_same_node(self, routing16):
        assert routing16.links_on_shortest_paths(4, 4) == frozenset()

    def test_symmetric(self, routing16):
        # Up*/down* legality is direction-symmetric (reverse of a legal
        # path is legal), so the link support must be symmetric too.
        for i in range(0, 16, 3):
            for j in range(0, 16, 4):
                if i == j:
                    continue
                assert routing16.links_on_shortest_paths(i, j) == \
                    routing16.links_on_shortest_paths(j, i)

    def test_contains_some_path(self, topo16, routing16):
        for i in range(0, 16, 5):
            for j in range(1, 16, 3):
                if i == j:
                    continue
                links = routing16.links_on_shortest_paths(i, j)
                path = routing16.shortest_path(i, j)
                for a, b in zip(path, path[1:]):
                    key = (a, b) if a < b else (b, a)
                    assert key in links

    def test_all_links_are_real(self, topo16, routing16):
        links = routing16.links_on_shortest_paths(0, 9)
        for u, v in links:
            assert topo16.has_link(u, v)

    def test_single_path_chain(self):
        # On a path graph the support is exactly the path's links.
        t = Topology(4, [(0, 1), (1, 2), (2, 3)])
        r = UpDownRouting(t, root=0)
        assert r.links_on_shortest_paths(0, 3) == frozenset(
            {(0, 1), (1, 2), (2, 3)}
        )


class TestCaching:
    def test_distance_cache_stable(self, routing16):
        a = routing16.distances()
        b = routing16.distances()
        assert a is b

    def test_backward_cache(self, routing16):
        a = routing16._backward_dist(5)
        b = routing16._backward_dist(5)
        assert a is b
